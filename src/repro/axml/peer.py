"""An Active XML peer.

A peer bundles a repository of intensional documents, a service it
*provides* (declarative queries over its repository, or arbitrary
handlers), a registry of services it can *call*, and the Schema
Enforcement module that guards every boundary:

- outgoing documents are enforced against the exchange schema agreed
  with the destination peer;
- parameters of provided services are enforced against the operation's
  declared input type before the handler runs;
- results are enforced against the declared output type before they are
  returned — the three-step verify/rewrite/error behaviour on both sides
  of every call, exactly as Section 7 describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.axml.enforcement import EnforcementOutcome, SchemaEnforcer
from repro.axml.repository import DocumentRepository
from repro.doc.document import Document
from repro.doc.nodes import FunctionCall, Node
from repro.errors import RewriteError, ServiceFault
from repro.rewriting.engine import SAFE
from repro.schema.model import FunctionSignature, Schema
from repro.schema.patterns import InvocationPolicy, allow_all
from repro.services.registry import ServiceRegistry
from repro.services.resilience import ResiliencePolicy
from repro.services.service import Handler, Service


@dataclass
class AXMLPeer:
    """One peer of the simulated Active XML network."""

    name: str
    schema: Schema  # the peer's own vocabulary (s0): labels + signatures
    repository: DocumentRepository = field(default_factory=DocumentRepository)
    registry: ServiceRegistry = field(default_factory=ServiceRegistry)
    k: int = 1
    mode: str = SAFE
    policy: InvocationPolicy = field(default_factory=allow_all)
    service: Optional[Service] = None  # the peer's own endpoint
    #: When set, every invoker this peer builds is wrapped in a fresh
    #: :class:`repro.services.resilience.ResilientInvoker` — retries,
    #: deadlines and circuit breakers scoped to one exchange, with the
    #: resulting :class:`FaultReport` surfaced on transfer receipts.
    resilience: Optional[ResiliencePolicy] = None
    #: Concurrent materialization (see :mod:`repro.exec`): worker count
    #: for overlapping independent round-trips while enforcing outgoing
    #: documents.  ``None`` resolves ``REPRO_WORKERS`` (default 1).
    parallelism: Optional[int] = None
    #: Deduplicate identical in-flight calls while prefetching; ``None``
    #: resolves ``REPRO_DEDUP`` (default on).
    dedup: Optional[bool] = None

    def __post_init__(self):
        if self.service is None:
            self.service = Service(
                endpoint="axml://%s" % self.name, namespace="urn:axml:%s" % self.name
            )
        # A peer can always call itself.
        self.registry.register(self.service)

    # -- providing services -----------------------------------------------

    def provide(
        self,
        operation: str,
        signature: FunctionSignature,
        handler: Handler,
        enforce_io: bool = True,
    ) -> None:
        """Expose an operation, wrapped with schema enforcement.

        Incoming parameters are rewritten into the declared input type
        (invoking embedded calls through this peer's registry if needed),
        and results into the output type, before leaving the peer.
        """
        if not enforce_io:
            self.service.add_operation(operation, signature, handler)
            return

        def enforced(params: Sequence[Node]) -> Tuple[Node, ...]:
            enforcer = self._enforcer()
            inbound = enforcer.enforce_forest(
                params, signature.input_type, self.invoker()
            )
            if not inbound.ok:
                raise ServiceFault(
                    "parameters rejected by %s: %s" % (self.name, inbound.error),
                    fault_code="Client",
                )
            output = tuple(handler(inbound.forest))
            outbound = enforcer.enforce_forest(
                output, signature.output_type, self.invoker()
            )
            if not outbound.ok:
                raise ServiceFault(
                    "result of %r violates its declared type: %s"
                    % (operation, outbound.error)
                )
            return outbound.forest

        self.service.add_operation(operation, signature, enforced)

    def provide_query(
        self,
        operation: str,
        document_name: str,
        path_expr: str,
        signature: FunctionSignature,
        text_filter: bool = False,
    ) -> None:
        """Expose a declarative query over the repository as a service."""
        from repro.axml.query import query_service

        _signature, handler = query_service(
            self.repository, document_name, path_expr, signature, text_filter
        )
        self.provide(operation, signature, handler)

    # -- calling services ----------------------------------------------------

    def invoker(self) -> Callable[[FunctionCall], Tuple[Node, ...]]:
        """The invoker this peer materializes calls with.

        With :attr:`resilience` configured this is a *fresh*
        :class:`ResilientInvoker` per call site — deadlines, budgets and
        fault reports are scoped to one enforcement pass (one exchange).
        """
        return self.registry.make_invoker(
            principal=self.name, resilience=self.resilience
        )

    def know_peer(self, other: "AXMLPeer") -> None:
        """Make another peer's endpoint callable from here."""
        self.registry.register(other.service)

    # -- exchanging documents ---------------------------------------------------

    def _enforcer(
        self,
        target_schema: Optional[Schema] = None,
        mode: Optional[str] = None,
        parallelism: Optional[int] = None,
    ) -> SchemaEnforcer:
        return SchemaEnforcer(
            target_schema=target_schema or self.schema,
            sender_schema=self.schema,
            k=self.k,
            mode=mode or self.mode,
            policy=self.policy,
            workers=parallelism if parallelism is not None else self.parallelism,
            dedup=self.dedup,
        )

    def prepare_outgoing(
        self,
        document_name: str,
        exchange_schema: Schema,
        parallelism: Optional[int] = None,
    ) -> EnforcementOutcome:
        """Enforce a stored document against an agreed exchange schema.

        This is what runs right before the document leaves the peer; the
        returned outcome carries either the (possibly materialized)
        document or the error of step (iii).  ``parallelism`` overrides
        the peer's default worker count for this one exchange (the
        results still merge in document order, so the document is the
        same at any setting).
        """
        document = self.repository.get(document_name)
        enforcer = self._enforcer(exchange_schema, parallelism=parallelism)
        return enforcer.enforce_document(document, self.invoker())

    def receive(self, name: str, document: Document) -> None:
        """Accept a document from the network into the repository."""
        self.repository.store(name, document)
