"""Declarative update services over the repository.

The paper's peers provide "some Web services, defined declaratively as
queries/updates on top of the repository documents".
:mod:`repro.axml.query` covers the query half; this module covers
updates: path-addressed insertions, replacements and deletions that a
peer can expose as service operations.  Updated documents may gain new
*intensional* content — inserting a fragment that contains calls is how
a repository document gets enriched over time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.axml.repository import DocumentRepository
from repro.doc.document import Document
from repro.doc.nodes import Element, Node, with_children
from repro.doc.paths import Path, get_node, iter_nodes, splice_at
from repro.errors import DocumentError
from repro.schema.model import Schema
from repro.schema.validate import validate


def _match_paths(document: Document, path_expr: str) -> List[Path]:
    """Paths of every node matched by a label-path expression."""
    from repro.axml.query import _matches

    steps = [step for step in path_expr.split("/") if step]
    if not steps:
        raise DocumentError("empty update path")
    matches: List[Path] = []
    for path, node in iter_nodes(document.root):
        if len(path) != len(steps) - 1:
            continue
        # The first step addresses the root.
        chain = [document.root]
        for index in path:
            from repro.doc.nodes import children_of

            chain.append(children_of(chain[-1])[index])
        if all(_matches(n, s) for n, s in zip(chain, steps)):
            matches.append(path)
    return matches


@dataclass
class UpdateResult:
    """What one update did."""

    document: Document
    matched: int
    changed: bool


def insert_into(
    document: Document,
    path_expr: str,
    fragment: Sequence[Node],
    position: Optional[int] = None,
) -> UpdateResult:
    """Insert a forest into every element matched by the path.

    ``position`` indexes into the children (None = append).
    """
    paths = _match_paths(document, path_expr)
    current = document
    for path in paths:
        node = get_node(current.root, path)
        if not isinstance(node, Element):
            raise DocumentError(
                "insert target at %r is not an element" % (path_expr,)
            )
        index = len(node.children) if position is None else position
        new_children = (
            node.children[:index] + tuple(fragment) + node.children[index:]
        )
        current = current.replace(path, with_children(node, new_children))
    return UpdateResult(current, len(paths), bool(paths and fragment))


def replace_matches(
    document: Document, path_expr: str, fragment: Sequence[Node]
) -> UpdateResult:
    """Replace every matched node by a forest (may grow or shrink)."""
    paths = _match_paths(document, path_expr)
    current = document
    # Replace right-to-left so earlier paths stay valid.
    for path in sorted(paths, reverse=True):
        if not path:
            if len(fragment) != 1:
                raise DocumentError("cannot replace the root by a forest")
            current = Document(fragment[0])
        else:
            current = Document(splice_at(current.root, path, tuple(fragment)))
    return UpdateResult(current, len(paths), bool(paths))


def delete_matches(document: Document, path_expr: str) -> UpdateResult:
    """Delete every matched node (the root cannot be deleted)."""
    paths = _match_paths(document, path_expr)
    if any(not path for path in paths):
        raise DocumentError("cannot delete the document root")
    current = document
    for path in sorted(paths, reverse=True):
        current = Document(splice_at(current.root, path, ()))
    return UpdateResult(current, len(paths), bool(paths))


@dataclass
class UpdateService:
    """A validated update operation over one repository document.

    Applies an update, re-validates against the peer's schema, and only
    commits when the document stays a schema instance — a peer must not
    corrupt its own repository through its update services.
    """

    repository: DocumentRepository
    document_name: str
    schema: Optional[Schema] = None

    def _commit(self, result: UpdateResult) -> UpdateResult:
        if self.schema is not None:
            report = validate(result.document, self.schema, strict=False)
            if not report.ok:
                raise DocumentError(
                    "update would break the document's schema: %s" % report
                )
        self.repository.store(self.document_name, result.document)
        return result

    def insert(self, path_expr: str, fragment: Sequence[Node],
               position: Optional[int] = None) -> UpdateResult:
        """Validated insert-into."""
        document = self.repository.get(self.document_name)
        return self._commit(insert_into(document, path_expr, fragment, position))

    def replace(self, path_expr: str, fragment: Sequence[Node]) -> UpdateResult:
        """Validated replace."""
        document = self.repository.get(self.document_name)
        return self._commit(replace_matches(document, path_expr, fragment))

    def delete(self, path_expr: str) -> UpdateResult:
        """Validated delete."""
        document = self.repository.get(self.document_name)
        return self._commit(delete_matches(document, path_expr))
