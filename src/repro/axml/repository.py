"""The per-peer repository of intensional documents.

Documents are stored by name; the repository can persist itself to a
directory of ``.xml`` files in the Active XML syntax and load back —
the "persistent storage for intensional documents" of the paper's
system description.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.doc.document import Document
from repro.errors import DocumentError


@dataclass
class DocumentRepository:
    """A named collection of intensional documents."""

    documents: Dict[str, Document] = field(default_factory=dict)

    def store(self, name: str, document: Document) -> None:
        """Insert or replace a document."""
        self.documents[name] = document

    def get(self, name: str) -> Document:
        """Fetch by name; raises :class:`DocumentError` when missing."""
        document = self.documents.get(name)
        if document is None:
            raise DocumentError("no document named %r in the repository" % name)
        return document

    def delete(self, name: str) -> None:
        """Remove a document (missing names raise)."""
        if name not in self.documents:
            raise DocumentError("no document named %r in the repository" % name)
        del self.documents[name]

    def names(self) -> List[str]:
        """Stored document names, sorted."""
        return sorted(self.documents)

    def __len__(self) -> int:
        return len(self.documents)

    def __contains__(self, name: str) -> bool:
        return name in self.documents

    def items(self) -> Iterator[Tuple[str, Document]]:
        """Iterate ``(name, document)`` pairs in name order."""
        for name in self.names():
            yield name, self.documents[name]

    # -- persistence ----------------------------------------------------------

    def save_to(self, directory: str) -> List[str]:
        """Write every document as ``<name>.xml``; returns written paths."""
        os.makedirs(directory, exist_ok=True)
        written: List[str] = []
        for name, document in self.items():
            path = os.path.join(directory, name + ".xml")
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(document.to_xml())
        # Collect after writing so a failure leaves no stale list entries.
            written.append(path)
        return written

    @staticmethod
    def load_from(directory: str) -> "DocumentRepository":
        """Read every ``.xml`` file of a directory back into a repository."""
        repository = DocumentRepository()
        for filename in sorted(os.listdir(directory)):
            if not filename.endswith(".xml"):
                continue
            path = os.path.join(directory, filename)
            with open(path, "r", encoding="utf-8") as handle:
                repository.store(filename[:-4], Document.from_xml(handle.read()))
        return repository

    def intensional_stats(self) -> Dict[str, int]:
        """Total documents, nodes and embedded calls — used by examples."""
        nodes = sum(doc.size() for doc in self.documents.values())
        calls = sum(doc.function_count() for doc in self.documents.values())
        return {"documents": len(self.documents), "nodes": nodes, "calls": calls}
