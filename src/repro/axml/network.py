"""An in-process network of Active XML peers.

Stands in for the SOAP transport between peers: documents travel as
serialized XML (so the exchange exercises the full parse/serialize
path), and every transfer is guarded by the exchange schema the two
peers agreed on (the scenario of Figure 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.axml.peer import AXMLPeer
from repro.doc.document import Document
from repro.errors import RewriteError, SchemaError, UnknownPeerError
from repro.obs import context as obs
from repro.schema.model import Schema
from repro.schema.validate import validate
from repro.services.resilience import FaultReport


class TransferReceipt:
    """What happened during one document transfer.

    Beyond the paper's accounting (calls materialized, bytes on the
    wire), the receipt carries the resilience story of the exchange:
    how many retries and faults the sender's invocation layer absorbed,
    how often circuit breakers opened, which functions were degraded
    around, and — when the sending peer ran a resilient invoker — the
    full per-transfer :class:`FaultReport`.

    ``retries``/``faults``/``breaker_opens`` are *derived* from the
    attached :class:`FaultReport` whenever one is present, so the
    receipt can never disagree with the report it carries; the keyword
    arguments remain as fallbacks for report-less transfers.
    """

    def __init__(
        self,
        sender: str,
        receiver: str,
        document_name: str,
        calls_materialized: int,
        bytes_on_wire: int,
        accepted: bool,
        error: str = "",
        retries: int = 0,
        faults: int = 0,
        breaker_opens: int = 0,
        degraded_functions: Tuple[str, ...] = (),
        fault_report: Optional[FaultReport] = None,
        exec_report=None,
    ) -> None:
        self.sender = sender
        self.receiver = receiver
        self.document_name = document_name
        self.calls_materialized = calls_materialized
        self.bytes_on_wire = bytes_on_wire
        self.accepted = accepted
        self.error = error
        self._retries = retries
        self._faults = faults
        self._breaker_opens = breaker_opens
        self._degraded_functions = tuple(degraded_functions)
        self.fault_report = fault_report
        #: The sender's :class:`repro.exec.ExecReport` when the exchange
        #: ran with a parallelism knob; None for sequential transfers.
        self.exec_report = exec_report

    @property
    def saved_round_trips(self) -> int:
        """Round-trips the sender's dedup/prefetch layer avoided."""
        if self.exec_report is None:
            return 0
        return self.exec_report.saved_round_trips

    @property
    def retries(self) -> int:
        if self.fault_report is not None:
            return self.fault_report.retries
        return self._retries

    @property
    def faults(self) -> int:
        if self.fault_report is not None:
            return self.fault_report.faults
        return self._faults

    @property
    def breaker_opens(self) -> int:
        if self.fault_report is not None:
            return self.fault_report.breaker_opens
        return self._breaker_opens

    @property
    def degraded_functions(self) -> Tuple[str, ...]:
        if self.fault_report is not None and self.fault_report.dead_functions:
            return tuple(sorted(self.fault_report.dead_functions))
        return self._degraded_functions

    def __repr__(self) -> str:
        return (
            "TransferReceipt(sender=%r, receiver=%r, document_name=%r, "
            "calls_materialized=%r, bytes_on_wire=%r, accepted=%r, "
            "error=%r, retries=%r, faults=%r, breaker_opens=%r, "
            "degraded_functions=%r)"
            % (
                self.sender, self.receiver, self.document_name,
                self.calls_materialized, self.bytes_on_wire, self.accepted,
                self.error, self.retries, self.faults, self.breaker_opens,
                self.degraded_functions,
            )
        )


@dataclass
class PeerNetwork:
    """Peers plus the exchange schemas they agreed on."""

    peers: Dict[str, AXMLPeer] = field(default_factory=dict)
    agreements: Dict[Tuple[str, str], Schema] = field(default_factory=dict)
    receipts: List[TransferReceipt] = field(default_factory=list)

    def add_peer(self, peer: AXMLPeer) -> "PeerNetwork":
        """Join a peer; existing peers become mutually callable."""
        for other in self.peers.values():
            other.know_peer(peer)
            peer.know_peer(other)
        self.peers[peer.name] = peer
        return self

    def agree(self, sender: str, receiver: str, schema: Schema) -> None:
        """Fix the data exchange schema for one direction (Figure 1)."""
        self._peer(sender)
        self._peer(receiver)
        self.agreements[(sender, receiver)] = schema

    def _peer(self, name: str) -> AXMLPeer:
        peer = self.peers.get(name)
        if peer is None:
            # Typed, never a raw KeyError: senders addressing a peer that
            # left (or never joined) get a catchable, explanatory error.
            raise UnknownPeerError(name, known=tuple(self.peers))
        return peer

    def send(
        self, sender: str, receiver: str, document_name: str,
        store_as: Optional[str] = None,
        parallelism: Optional[int] = None,
    ) -> TransferReceipt:
        """Transfer one document, enforcing the agreed schema.

        The sender's Schema Enforcement module materializes whatever the
        agreement requires; the receiver validates independently before
        accepting (defense in depth — a receiver does not trust senders).

        ``parallelism`` lets the sender overlap independent service
        round-trips while materializing (see :mod:`repro.exec`); the
        delivered document is bit-identical at any setting.
        """
        source = self._peer(sender)
        target = self._peer(receiver)
        agreement = self.agreements.get((sender, receiver))
        if agreement is None:
            raise SchemaError(
                "no exchange schema agreed between %r and %r" % (sender, receiver)
            )

        tracer = obs.tracer()
        with tracer.span(
            "exchange", sender=sender, receiver=receiver,
            document=document_name,
        ) as span:
            receipt = self._transfer(
                source, target, sender, receiver, document_name, agreement,
                store_as, tracer, parallelism,
            )
            span.set(
                accepted=receipt.accepted,
                calls=receipt.calls_materialized,
                bytes=receipt.bytes_on_wire,
                retries=receipt.retries,
            )
        metrics = obs.metrics()
        if metrics.enabled:
            metrics.counter(
                "repro_transfers_total", "Peer-to-peer document transfers"
            ).inc(accepted=str(receipt.accepted).lower())
            metrics.counter(
                "repro_transfer_bytes_total", "Document bytes on the wire"
            ).inc(receipt.bytes_on_wire)
        self.receipts.append(receipt)
        return receipt

    def _transfer(
        self,
        source: AXMLPeer,
        target: AXMLPeer,
        sender: str,
        receiver: str,
        document_name: str,
        agreement: Schema,
        store_as: Optional[str],
        tracer,
        parallelism: Optional[int] = None,
    ) -> TransferReceipt:
        """Enforce, serialize, and validate one transfer."""
        outcome = source.prepare_outgoing(
            document_name, agreement, parallelism=parallelism
        )
        resilience = dict(
            degraded_functions=outcome.degraded_functions,
            fault_report=outcome.fault_report,
            exec_report=outcome.exec_report,
        )
        if not outcome.ok:
            return TransferReceipt(
                sender, receiver, document_name, outcome.calls_made, 0, False,
                error=outcome.error, **resilience,
            )

        with tracer.span("transfer.serialize") as span:
            wire = outcome.document.to_xml()
            delivered = Document.from_xml(wire)
            span.set(bytes=len(wire.encode("utf-8")))

        # Defense in depth: the receiver validates with *its own*
        # vocabulary (the agreement plus its own schema for anything the
        # agreement leaves open) — never with the sender's claims.
        with tracer.span("transfer.validate") as span:
            report = validate(delivered, agreement, target.schema)
            accepted = report.ok
            span.set(accepted=accepted)
        if accepted:
            target.receive(store_as or document_name, delivered)
        return TransferReceipt(
            sender,
            receiver,
            document_name,
            outcome.calls_made,
            len(wire.encode("utf-8")),
            accepted,
            error="" if accepted else str(report),
            **resilience,
        )
