"""An in-process network of Active XML peers.

Stands in for the SOAP transport between peers: documents travel as
serialized XML (so the exchange exercises the full parse/serialize
path), and every transfer is guarded by the exchange schema the two
peers agreed on (the scenario of Figure 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.axml.peer import AXMLPeer
from repro.doc.document import Document
from repro.errors import RewriteError, SchemaError
from repro.schema.model import Schema
from repro.schema.validate import validate
from repro.services.resilience import FaultReport


@dataclass
class TransferReceipt:
    """What happened during one document transfer.

    Beyond the paper's accounting (calls materialized, bytes on the
    wire), the receipt carries the resilience story of the exchange:
    how many retries and faults the sender's invocation layer absorbed,
    how often circuit breakers opened, which functions were degraded
    around, and — when the sending peer ran a resilient invoker — the
    full per-transfer :class:`FaultReport`.
    """

    sender: str
    receiver: str
    document_name: str
    calls_materialized: int
    bytes_on_wire: int
    accepted: bool
    error: str = ""
    retries: int = 0
    faults: int = 0
    breaker_opens: int = 0
    degraded_functions: Tuple[str, ...] = ()
    fault_report: Optional[FaultReport] = None


@dataclass
class PeerNetwork:
    """Peers plus the exchange schemas they agreed on."""

    peers: Dict[str, AXMLPeer] = field(default_factory=dict)
    agreements: Dict[Tuple[str, str], Schema] = field(default_factory=dict)
    receipts: List[TransferReceipt] = field(default_factory=list)

    def add_peer(self, peer: AXMLPeer) -> "PeerNetwork":
        """Join a peer; existing peers become mutually callable."""
        for other in self.peers.values():
            other.know_peer(peer)
            peer.know_peer(other)
        self.peers[peer.name] = peer
        return self

    def agree(self, sender: str, receiver: str, schema: Schema) -> None:
        """Fix the data exchange schema for one direction (Figure 1)."""
        self._peer(sender)
        self._peer(receiver)
        self.agreements[(sender, receiver)] = schema

    def _peer(self, name: str) -> AXMLPeer:
        peer = self.peers.get(name)
        if peer is None:
            raise SchemaError("unknown peer %r" % name)
        return peer

    def send(
        self, sender: str, receiver: str, document_name: str,
        store_as: Optional[str] = None,
    ) -> TransferReceipt:
        """Transfer one document, enforcing the agreed schema.

        The sender's Schema Enforcement module materializes whatever the
        agreement requires; the receiver validates independently before
        accepting (defense in depth — a receiver does not trust senders).
        """
        source = self._peer(sender)
        target = self._peer(receiver)
        agreement = self.agreements.get((sender, receiver))
        if agreement is None:
            raise SchemaError(
                "no exchange schema agreed between %r and %r" % (sender, receiver)
            )

        outcome = source.prepare_outgoing(document_name, agreement)
        fault_report = outcome.fault_report
        resilience = dict(
            retries=fault_report.retries if fault_report else 0,
            faults=fault_report.faults if fault_report else 0,
            breaker_opens=fault_report.breaker_opens if fault_report else 0,
            degraded_functions=outcome.degraded_functions,
            fault_report=fault_report,
        )
        if not outcome.ok:
            receipt = TransferReceipt(
                sender, receiver, document_name, outcome.calls_made, 0, False,
                error=outcome.error, **resilience,
            )
            self.receipts.append(receipt)
            return receipt

        wire = outcome.document.to_xml()
        delivered = Document.from_xml(wire)

        # Defense in depth: the receiver validates with *its own*
        # vocabulary (the agreement plus its own schema for anything the
        # agreement leaves open) — never with the sender's claims.
        report = validate(delivered, agreement, target.schema)
        accepted = report.ok
        if accepted:
            target.receive(store_as or document_name, delivered)
        receipt = TransferReceipt(
            sender,
            receiver,
            document_name,
            outcome.calls_made,
            len(wire.encode("utf-8")),
            accepted,
            error="" if accepted else str(report),
            **resilience,
        )
        self.receipts.append(receipt)
        return receipt
