"""An in-process network of Active XML peers.

Stands in for the SOAP transport between peers: documents travel as
serialized XML (so the exchange exercises the full parse/serialize
path), and every transfer is guarded by the exchange schema the two
peers agreed on (the scenario of Figure 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.axml.peer import AXMLPeer
from repro.doc.document import Document
from repro.errors import RewriteError, SchemaError
from repro.schema.model import Schema
from repro.schema.validate import validate


@dataclass
class TransferReceipt:
    """What happened during one document transfer."""

    sender: str
    receiver: str
    document_name: str
    calls_materialized: int
    bytes_on_wire: int
    accepted: bool
    error: str = ""


@dataclass
class PeerNetwork:
    """Peers plus the exchange schemas they agreed on."""

    peers: Dict[str, AXMLPeer] = field(default_factory=dict)
    agreements: Dict[Tuple[str, str], Schema] = field(default_factory=dict)
    receipts: list = field(default_factory=list)

    def add_peer(self, peer: AXMLPeer) -> "PeerNetwork":
        """Join a peer; existing peers become mutually callable."""
        for other in self.peers.values():
            other.know_peer(peer)
            peer.know_peer(other)
        self.peers[peer.name] = peer
        return self

    def agree(self, sender: str, receiver: str, schema: Schema) -> None:
        """Fix the data exchange schema for one direction (Figure 1)."""
        self._peer(sender)
        self._peer(receiver)
        self.agreements[(sender, receiver)] = schema

    def _peer(self, name: str) -> AXMLPeer:
        peer = self.peers.get(name)
        if peer is None:
            raise SchemaError("unknown peer %r" % name)
        return peer

    def send(
        self, sender: str, receiver: str, document_name: str,
        store_as: Optional[str] = None,
    ) -> TransferReceipt:
        """Transfer one document, enforcing the agreed schema.

        The sender's Schema Enforcement module materializes whatever the
        agreement requires; the receiver validates independently before
        accepting (defense in depth — a receiver does not trust senders).
        """
        source = self._peer(sender)
        target = self._peer(receiver)
        agreement = self.agreements.get((sender, receiver))
        if agreement is None:
            raise SchemaError(
                "no exchange schema agreed between %r and %r" % (sender, receiver)
            )

        outcome = source.prepare_outgoing(document_name, agreement)
        if not outcome.ok:
            receipt = TransferReceipt(
                sender, receiver, document_name, outcome.calls_made, 0, False,
                error=outcome.error,
            )
            self.receipts.append(receipt)
            return receipt

        wire = outcome.document.to_xml()
        delivered = Document.from_xml(wire)

        report = validate(delivered, agreement, source.schema)
        accepted = report.ok
        if accepted:
            target.receive(store_as or document_name, delivered)
        receipt = TransferReceipt(
            sender,
            receiver,
            document_name,
            outcome.calls_made,
            len(wire.encode("utf-8")),
            accepted,
            error="" if accepted else str(report),
        )
        self.receipts.append(receipt)
        return receipt
