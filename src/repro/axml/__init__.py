"""The Active XML system layer (Section 7).

"ActiveXML is a peer-to-peer system that is centered around intensional
XML documents.  Each peer contains a repository of intensional
documents, and provides some active features to enrich them by
automatically triggering the function calls they contain.  It also
provides some Web services, defined declaratively as queries/updates on
top of the repository documents."

- :mod:`repro.axml.repository` — the per-peer document store (with
  optional on-disk persistence in the ``int:`` XML syntax);
- :mod:`repro.axml.enforcement` — the **Schema Enforcement module**, the
  paper's implementation of this paper's algorithms: verify → rewrite →
  error, applied to outgoing documents, service parameters and results;
- :mod:`repro.axml.peer` / :mod:`repro.axml.network` — peers exchanging
  documents over an in-process network, enforcing agreed schemas on
  every send;
- :mod:`repro.axml.query` — declarative services over the repository;
- :mod:`repro.axml.triggers` — the active features (automatic call
  materialization policies).
"""

from repro.axml.repository import DocumentRepository
from repro.axml.enforcement import EnforcementOutcome, SchemaEnforcer
from repro.axml.peer import AXMLPeer
from repro.axml.network import PeerNetwork, TransferReceipt
from repro.axml.query import query_service
from repro.axml.triggers import TriggerPolicy, apply_triggers
from repro.axml.updates import (
    UpdateService,
    delete_matches,
    insert_into,
    replace_matches,
)
from repro.axml.negotiation import (
    NegotiationOutcome,
    intensionality_degree,
    negotiate,
)

__all__ = [
    "DocumentRepository",
    "SchemaEnforcer",
    "EnforcementOutcome",
    "AXMLPeer",
    "PeerNetwork",
    "TransferReceipt",
    "query_service",
    "TriggerPolicy",
    "apply_triggers",
    "negotiate",
    "NegotiationOutcome",
    "intensionality_degree",
    "UpdateService",
    "insert_into",
    "replace_matches",
    "delete_matches",
]
