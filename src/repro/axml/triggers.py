"""Active features: automatic triggering of embedded calls.

An Active XML peer "provides some active features to enrich
[documents] by automatically triggering the function calls they
contain".  A :class:`TriggerPolicy` selects which calls fire and how
deep the enrichment chases freshly returned calls; this is deliberately
simpler than full Active XML (no timers), but exercises the same
materialize-in-place behaviour the exchange algorithms then reason
about.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Sequence, Tuple

from repro.doc.document import Document
from repro.doc.nodes import Element, FunctionCall, Node, with_children
from repro.rewriting.plan import InvocationLog
from repro.rewriting.safe import Invoker


@dataclass(frozen=True)
class TriggerPolicy:
    """Which calls to fire, and how deep.

    ``max_depth`` bounds dependency chains like the k of Definition 7 —
    a call returned by a triggered call fires only while depth remains.
    ``only`` filters by function name (default: everything fires).
    """

    max_depth: int = 1
    only: Callable[[str], bool] = field(compare=False, default=lambda _n: True)


def apply_triggers(
    document: Document,
    invoker: Invoker,
    policy: TriggerPolicy = TriggerPolicy(),
) -> Tuple[Document, InvocationLog]:
    """Materialize calls selected by the policy, splicing outputs in place.

    Returns the enriched document and the log of performed calls.  The
    traversal is document-order; outputs are scanned for further calls
    while the policy's depth budget allows.
    """
    log = InvocationLog()
    root = _trigger_node(document.root, invoker, policy, log, depth=1)
    return Document(root), log


def _trigger_forest(
    forest: Sequence[Node],
    invoker: Invoker,
    policy: TriggerPolicy,
    log: InvocationLog,
    depth: int,
) -> Tuple[Node, ...]:
    result: List[Node] = []
    for node in forest:
        if (
            isinstance(node, FunctionCall)
            and depth <= policy.max_depth
            and policy.only(node.name)
        ):
            from repro.doc.nodes import symbol_of

            output = tuple(invoker(node))
            log.add(node.name, depth, tuple(symbol_of(t) for t in output))
            result.extend(
                _trigger_forest(output, invoker, policy, log, depth + 1)
            )
        else:
            result.append(_trigger_node(node, invoker, policy, log, depth))
    return tuple(result)


def _trigger_node(
    node: Node,
    invoker: Invoker,
    policy: TriggerPolicy,
    log: InvocationLog,
    depth: int,
) -> Node:
    if isinstance(node, Element):
        children = _trigger_forest(node.children, invoker, policy, log, depth)
        return with_children(node, children)
    # Kept function calls: parameters are left untouched (they belong to
    # the call, not to the document's extensional content).
    return node
