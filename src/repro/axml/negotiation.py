"""Schema negotiation between peers (the conclusion's second extension).

"This module may be extended to act as a 'negotiator' who could speak to
other peers to agree with them on the intensional XML Schemas that
should be used to exchange data."

The protocol here is the simplest useful one: the receiver *offers* a
list of exchange schemas it accepts (typically from most intensional to
fully materialized); the sender filters them with the Section 6
compatibility check and picks the best by a preference:

- ``"intensional"`` (default): keep as many calls unmaterialized as
  possible — fewer invocations, smaller sender load, fresher data for
  the receiver;
- ``"extensional"``: materialize as much as possible — fewer receiver
  capabilities required, better provenance hiding;
- ``"cheapest"``: minimize the estimated worst-case invocation cost of
  the root label, using the optimal-strategy values of
  :mod:`repro.rewriting.optimal`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.errors import SchemaError
from repro.regex.ast import Atom
from repro.schema.model import Schema
from repro.schema.patterns import InvocationPolicy, allow_all
from repro.schemarewrite.compat import SchemaCompatReport, schema_safely_rewrites


@dataclass
class NegotiationOutcome:
    """What the negotiator decided."""

    agreed: Optional[Schema]
    considered: int
    compatible: List[int] = field(default_factory=list)  # indices of offers
    reports: List[SchemaCompatReport] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.agreed is not None


def intensionality_degree(schema: Schema) -> int:
    """How many function/pattern positions the schema's types allow.

    A coarse but effective preference key: each occurrence of a function
    name or pattern name as an atom inside a label's content model is one
    position where a call may stay intensional.
    """
    callable_names = schema.function_names() | schema.pattern_names()
    degree = 0
    for expr in schema.label_types.values():
        for node in expr.walk():
            if isinstance(node, Atom) and node.symbol in callable_names:
                degree += 1
    return degree


def estimated_cost(
    sender: Schema, offer: Schema, k: int, policy: InvocationPolicy
) -> float:
    """Worst-case invocation count to ship the sender's root under the offer.

    Uses the Section 6 virtual-function game on the root label, valued
    with the optimal-strategy solver.
    """
    from repro.rewriting.optimal import strategy_values
    from repro.rewriting.safe import analyze_safe
    from repro.schemarewrite.compat import VIRTUAL, _shield_wildcards

    root = sender.root
    if root is None or offer.type_of(root) is None:
        return float("inf")
    output_types = {VIRTUAL: sender.label_types[root]}
    for source in (sender, offer):
        for name in source.function_names():
            output_types.setdefault(name, source.signature_of(name).output_type)
    analysis = analyze_safe(
        (VIRTUAL,),
        output_types,
        _shield_wildcards(offer.type_of(root)),
        k=k + 1,
        invocable=lambda name: name == VIRTUAL or policy.is_invocable(name),
    )
    if not analysis.exists:
        return float("inf")
    values = strategy_values(analysis)
    # Subtract the virtual call itself (cost 1 by default).
    return max(0.0, values[analysis.initial] - 1.0)


def negotiate(
    sender: Schema,
    offers: Sequence[Schema],
    k: int = 1,
    policy: Optional[InvocationPolicy] = None,
    preference: str = "intensional",
) -> NegotiationOutcome:
    """Pick the best offered exchange schema the sender can always honour.

    Every offer is screened with :func:`schema_safely_rewrites`
    (Definition 6); among the compatible ones the preference key decides.
    Ties keep the receiver's offer order (the receiver ranked them).
    """
    if preference not in ("intensional", "extensional", "cheapest"):
        raise ValueError("unknown preference %r" % preference)
    if sender.root is None:
        raise SchemaError("the sender schema must declare a root label")
    policy = policy or allow_all()

    outcome = NegotiationOutcome(agreed=None, considered=len(offers))
    scored = []
    for index, offer in enumerate(offers):
        report = schema_safely_rewrites(sender, offer, k=k, policy=policy)
        outcome.reports.append(report)
        if not report.compatible:
            continue
        outcome.compatible.append(index)
        if preference == "intensional":
            key = (-intensionality_degree(offer), index)
        elif preference == "extensional":
            key = (intensionality_degree(offer), index)
        else:
            key = (estimated_cost(sender, offer, k, policy), index)
        scored.append((key, index, offer))

    if scored:
        scored.sort(key=lambda item: item[0])
        outcome.agreed = scored[0][2]
    return outcome
