"""The Schema Enforcement module.

"The role of the Schema Enforcement module is (i) to verify whether the
call parameters conform to the WSDL_int description of the service,
(ii) if not, to try to rewrite them into the required structure and
(iii) if this fails, to report an error.  Similarly, before an ActiveXML
service returns its answer, the module performs the same three steps on
the returned data."  (Section 7)

:class:`SchemaEnforcer` packages exactly that three-step behaviour for
whole documents (outgoing exchanges) and for forests (service parameters
and results), on top of :class:`repro.rewriting.RewriteEngine`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence, Tuple

from repro.doc.document import Document
from repro.doc.nodes import Node
from repro.errors import RewriteError, SchemaError, ServiceError
from repro.obs import context as obs
from repro.regex.ast import Regex
from repro.rewriting.cost import UNIT, CostModel
from repro.rewriting.engine import POSSIBLE, SAFE, RewriteEngine
from repro.rewriting.plan import InvocationLog
from repro.rewriting.safe import Invoker
from repro.schema.model import Schema
from repro.schema.patterns import InvocationPolicy, allow_all
from repro.schema.validate import is_instance, validate
from repro.services.resilience import FaultReport


@dataclass
class EnforcementOutcome:
    """What one enforcement pass did."""

    document: Optional[Document]
    forest: Optional[Tuple[Node, ...]]
    already_conformant: bool
    calls_made: int
    log: InvocationLog
    error: Optional[str] = None
    #: Retry/fault/breaker accounting when the invoker was resilient.
    fault_report: Optional[FaultReport] = None
    #: Functions the engine degraded around (AUTO mode, dead providers).
    degraded_functions: Tuple[str, ...] = ()
    #: Analysis-cache efficacy of the pass (hits/misses on the engine's
    #: per-document cache of solved rewriting problems).
    cache_hits: int = 0
    cache_misses: int = 0
    #: The concurrent materialization scheduler's report
    #: (:class:`repro.exec.ExecReport`) when the engine prefetched.
    exec_report: Optional[object] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def degraded(self) -> bool:
        return bool(self.degraded_functions)


@dataclass
class SchemaEnforcer:
    """Verify → rewrite → error, as one reusable component.

    Args:
        target_schema: the structure required by the receiving side
            (the agreed exchange schema, or a service's WSDL_int types).
        sender_schema: signatures for functions the target does not know.
        k / mode / policy / cost_model: forwarded to the rewrite engine.
        workers / dedup / batch: concurrent materialization knobs,
            forwarded to the engine (see :mod:`repro.exec`); ``None``
            resolves ``REPRO_WORKERS`` / ``REPRO_DEDUP``.
        compile_cache: the shared automata compilation cache, forwarded
            to every engine this enforcer builds (``None`` = ambient).
    """

    target_schema: Schema
    sender_schema: Optional[Schema] = None
    k: int = 1
    mode: str = SAFE
    policy: InvocationPolicy = field(default_factory=allow_all)
    cost_model: CostModel = field(default_factory=lambda: UNIT)
    eager: Optional[Callable[[str], bool]] = None
    #: Use the lazy game solver (same answers, fewer explored nodes);
    #: forwarded to every engine this enforcer builds.
    lazy: bool = True
    workers: Optional[int] = None
    dedup: Optional[bool] = None
    batch: bool = False
    compile_cache: Optional[object] = None
    #: Optional converters (conclusion extension): applied as a last
    #: resort when plain rewriting cannot reach the target structure.
    converters: tuple = ()

    def _engine(self) -> RewriteEngine:
        return RewriteEngine(
            target_schema=self.target_schema,
            sender_schema=self.sender_schema,
            k=self.k,
            mode=self.mode,
            policy=self.policy,
            cost_model=self.cost_model,
            eager=self.eager,
            lazy=self.lazy,
            workers=self.workers,
            dedup=self.dedup,
            batch=self.batch,
            compile_cache=self.compile_cache,
        )

    @staticmethod
    def _fault_report(invoker: Invoker) -> Optional[FaultReport]:
        """The invoker's fault accounting, when it keeps one (resilience)."""
        report = getattr(invoker, "report", None)
        return report if isinstance(report, FaultReport) else None

    def enforce_document(
        self, document: Document, invoker: Invoker
    ) -> EnforcementOutcome:
        """The three steps, applied to a whole outgoing document."""
        with obs.tracer().span("enforce", scope="document") as span:
            outcome = self._enforce_document(document, invoker)
            span.set(
                ok=outcome.ok,
                already_conformant=outcome.already_conformant,
                calls=outcome.calls_made,
                degraded=outcome.degraded,
            )
            return outcome

    def _enforce_document(
        self, document: Document, invoker: Invoker
    ) -> EnforcementOutcome:
        # (i) verify
        if is_instance(document, self.target_schema, self.sender_schema):
            return EnforcementOutcome(
                document, None, True, 0, InvocationLog(),
                fault_report=self._fault_report(invoker),
            )
        # (ii) rewrite
        try:
            result = self._engine().rewrite(document, invoker)
        except (RewriteError, SchemaError, ServiceError) as exc:
            # (ii') converters, when configured: restructure then retry.
            if self.converters:
                converted = self._try_converters(document, invoker)
                if converted is not None:
                    return converted
            # (iii) report
            return EnforcementOutcome(
                None, None, False, 0, InvocationLog(), error=str(exc),
                fault_report=self._fault_report(invoker),
            )
        report = validate(result.document, self.target_schema, self.sender_schema)
        if not report.ok:
            return EnforcementOutcome(
                None, None, False, len(result.log), result.log,
                error="rewriting produced a non-conformant document: %s" % report,
                fault_report=self._fault_report(invoker),
                degraded_functions=result.degraded_functions,
                cache_hits=result.cache_hits,
                cache_misses=result.cache_misses,
            )
        return EnforcementOutcome(
            result.document, None, False, len(result.log), result.log,
            fault_report=self._fault_report(invoker),
            degraded_functions=result.degraded_functions,
            cache_hits=result.cache_hits,
            cache_misses=result.cache_misses,
            exec_report=result.exec_report,
        )

    def enforce_stream(
        self, source, invoker: Invoker, write: Callable[[str], None]
    ) -> EnforcementOutcome:
        """Enforce one document from an XML source, streaming the output.

        ``source`` is a string, bytes, or an iterable of byte/str chunks;
        ``write`` receives the enforced serialization incrementally while
        the tail of the input is still being parsed.  Memory stays
        bounded by the document's depth plus the widest buffered sibling
        run (never the whole tree).  The receipt mirrors
        :meth:`enforce_document` on the same input: already-conformant
        documents stream through with zero invocations, and errors carry
        the same messages (though on multi-error documents a different
        one of them may surface first; partial output already handed to
        ``write`` must then be discarded).  Converters are not applied
        on this path, and possible mode is rejected — its service calls
        on conformant words would diverge from the DOM verify step.
        Malformed XML raises :class:`DocumentParseError` as the DOM
        parser does.
        """
        if self.mode == POSSIBLE:
            raise ValueError(
                "streaming enforcement supports safe/auto modes only"
            )
        from repro.stream.enforce import stream_rewrite

        engine = self._engine()
        with obs.tracer().span("enforce", scope="stream") as span:
            try:
                result = stream_rewrite(engine, source, invoker, write)
            except (RewriteError, SchemaError, ServiceError) as exc:
                outcome = EnforcementOutcome(
                    None, None, False, 0, InvocationLog(), error=str(exc),
                    fault_report=self._fault_report(invoker),
                )
            else:
                if result.already_conformant:
                    # Mirror the DOM path's verify short-circuit: the
                    # rewrite was the identity, so the receipt reads as
                    # "verified conformant" with untouched counters.
                    outcome = EnforcementOutcome(
                        None, None, True, 0, InvocationLog(),
                        fault_report=self._fault_report(invoker),
                    )
                else:
                    outcome = EnforcementOutcome(
                        None, None, False, len(result.log), result.log,
                        fault_report=self._fault_report(invoker),
                        degraded_functions=result.degraded_functions,
                        cache_hits=result.cache_hits,
                        cache_misses=result.cache_misses,
                    )
            span.set(
                ok=outcome.ok,
                already_conformant=outcome.already_conformant,
                calls=outcome.calls_made,
                degraded=outcome.degraded,
            )
            return outcome

    def _try_converters(
        self, document: Document, invoker: Invoker
    ) -> Optional[EnforcementOutcome]:
        """Apply the configured converters, then retry the rewrite.

        Returns None when conversion does not help either, so the caller
        falls through to the step-(iii) error report.
        """
        from repro.rewriting.converters import convert_document

        try:
            converted = convert_document(document, self.converters)
            result = self._engine().rewrite(converted, invoker)
        except (RewriteError, SchemaError, ServiceError, ValueError):
            return None
        report = validate(result.document, self.target_schema, self.sender_schema)
        if not report.ok:
            return None
        return EnforcementOutcome(
            result.document, None, False, len(result.log), result.log,
            fault_report=self._fault_report(invoker),
            degraded_functions=result.degraded_functions,
            cache_hits=result.cache_hits,
            cache_misses=result.cache_misses,
        )

    def enforce_forest(
        self, forest: Sequence[Node], target: Regex, invoker: Invoker
    ) -> EnforcementOutcome:
        """The three steps, applied to parameters or results of a service.

        ``target`` is the type from the service's WSDL_int description
        (``tau_in`` for parameters, ``tau_out`` for results).
        """
        with obs.tracer().span("enforce", scope="forest") as span:
            outcome = self._enforce_forest(forest, target, invoker)
            span.set(
                ok=outcome.ok,
                already_conformant=outcome.already_conformant,
                calls=outcome.calls_made,
            )
            return outcome

    def _enforce_forest(
        self, forest: Sequence[Node], target: Regex, invoker: Invoker
    ) -> EnforcementOutcome:
        from repro.schema.validate import word_matches
        from repro.doc.nodes import symbol_of

        word = tuple(symbol_of(node) for node in forest)
        conformant = word_matches(
            word, target, self.target_schema, self.sender_schema
        ) and all(
            is_instance(node, self.target_schema, self.sender_schema, strict=False)
            for node in forest
        )
        if conformant:
            return EnforcementOutcome(
                None, tuple(forest), True, 0, InvocationLog(),
                fault_report=self._fault_report(invoker),
            )
        log = InvocationLog()
        stats = {"words": 0, "product": 0, "mode": SAFE}
        engine = self._engine()
        try:
            rewritten = engine.rewrite_forest(forest, target, invoker, log, stats)
        except (RewriteError, SchemaError, ServiceError) as exc:
            hits, misses = engine.cache_stats
            return EnforcementOutcome(
                None, None, False, len(log), log, str(exc),
                fault_report=self._fault_report(invoker),
                cache_hits=hits, cache_misses=misses,
            )
        hits, misses = engine.cache_stats
        return EnforcementOutcome(
            None, rewritten, False, len(log), log,
            fault_report=self._fault_report(invoker),
            degraded_functions=tuple(sorted(stats.get("dead", ()))),
            cache_hits=hits, cache_misses=misses,
        )

    # -- incremental enforcement (repro.incremental) ------------------------

    def session(self, document: Document, invoker: Invoker):
        """Open an :class:`~repro.incremental.EnforcementSession` for a
        mutating document.

        The session runs the initial pass lazily — call
        :meth:`~repro.incremental.session.EnforcementSession.enforce`
        for the first outcome, then
        :meth:`~repro.incremental.session.EnforcementSession.apply` per
        edit script.  Requires a per-call-deterministic invoker for
        outcomes byte-identical to full re-enforcement (see
        :mod:`repro.incremental.session`).
        """
        from repro.incremental.session import EnforcementSession

        return EnforcementSession(self, document, invoker)

    def enforce_incremental(
        self, document: Document, invoker: Invoker, edit_scripts=()
    ):
        """Convenience: open a session, enforce, replay edit scripts.

        Returns ``(session, outcomes)`` where ``outcomes[0]`` is the
        initial pass and ``outcomes[i+1]`` the pass after
        ``edit_scripts[i]``.
        """
        session = self.session(document, invoker)
        outcomes = [session.enforce()]
        for script in edit_scripts:
            outcomes.append(session.apply(script))
        return session, outcomes
