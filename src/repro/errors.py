"""Exception hierarchy for the intensional-XML exchange library.

Every error raised by this package derives from :class:`ReproError`, so
applications can catch the whole family with a single ``except`` clause
while still being able to distinguish parsing problems from rewriting
failures or service faults.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class RegexSyntaxError(ReproError):
    """A type expression could not be parsed.

    Raised by :func:`repro.regex.parse_regex` with the offending text and
    position recorded on the exception.
    """

    def __init__(self, message: str, text: str = "", position: int = -1):
        super().__init__(message)
        self.text = text
        self.position = position


class NondeterministicRegexError(ReproError):
    """A regex is not one-unambiguous where determinism was required.

    XML Schema enforces one-unambiguous (deterministic) content models;
    callers that require the polynomial fast path may ask the library to
    reject nondeterministic expressions instead of silently determinizing.
    """


class DocumentError(ReproError):
    """An intensional document is malformed (bad tree shape or labels)."""


class DocumentParseError(DocumentError):
    """The XML serialization of an intensional document could not be parsed."""


class SchemaError(ReproError):
    """A schema definition is inconsistent (unknown labels, bad signature...)."""


class UnknownPeerError(SchemaError):
    """A network operation names a peer that was never registered.

    Raised by :class:`repro.axml.network.PeerNetwork` (and the exchange
    gateway's registry) instead of a raw ``KeyError``, so callers can
    distinguish "wrong address" from every other schema problem.
    Carries the offending name and the names that *are* registered.
    """

    def __init__(self, name: str, known: tuple = ()):  # type: ignore[assignment]
        self.name = name
        self.known = tuple(sorted(known))
        hint = (
            " (registered: %s)" % ", ".join(self.known)
            if self.known
            else " (no peers registered)"
        )
        super().__init__("unknown peer %r%s" % (name, hint))


class ValidationError(ReproError):
    """A document is not an instance of a schema.

    Carries the list of individual violations so callers can report all of
    them at once rather than one at a time.
    """

    def __init__(self, message: str, violations: list | None = None):
        super().__init__(message)
        self.violations = list(violations or [])


class RewriteError(ReproError):
    """Base class for rewriting failures."""


class NoSafeRewritingError(RewriteError):
    """No k-depth left-to-right safe rewriting exists for the input."""


class NoPossibleRewritingError(RewriteError):
    """Not even a possible rewriting exists: ext(t) contains no instance."""


class RewriteExecutionError(RewriteError):
    """A rewriting plan failed during execution.

    For possible (non-safe) rewritings this signals that every backtracking
    branch was exhausted: the actual values returned by the services never
    matched an accepting path.
    """


class ServiceError(ReproError):
    """Base class for simulated Web-service failures."""


class ServiceFault(ServiceError):
    """The service raised a SOAP-style fault while executing."""

    def __init__(self, message: str, fault_code: str = "Server"):
        super().__init__(message)
        self.fault_code = fault_code


class TransientFault(ServiceFault):
    """A fault the provider may recover from — worth retrying.

    Timeouts, scripted outages, open circuit breakers and generic
    ``Server`` faults fall in this class; a resilient invoker retries
    them with backoff (:mod:`repro.services.resilience`).
    """

    def __init__(self, message: str, fault_code: str = "Server.Transient"):
        super().__init__(message, fault_code=fault_code)


class PermanentFault(ServiceFault):
    """A fault retrying cannot fix (bad parameters, unsupported call).

    ``Client`` faults are permanent by definition: the same request will
    be rejected again, so a resilient invoker fails fast instead of
    burning its retry budget.
    """

    def __init__(self, message: str, fault_code: str = "Client"):
        super().__init__(message, fault_code=fault_code)


class FunctionUnavailableError(PermanentFault):
    """A resilient invoker gave up on a function for this exchange.

    Raised after retries are exhausted, a permanent fault is observed,
    or a deadline/budget expires.  Carries the function name so the
    rewrite engine can degrade gracefully: in AUTO mode it re-analyzes
    the word treating the dead function as non-invocable (the legal
    rewriting partition of Section 2.1) instead of failing the document.
    """

    def __init__(self, function: str, endpoint: str = "", reason: str = ""):
        at = " at %s" % endpoint if endpoint else ""
        super().__init__(
            "function %r unavailable%s: %s" % (function, at, reason or "gave up"),
        )
        self.fault_code = "Server.Unavailable"
        self.function = function
        self.endpoint = endpoint
        self.reason = reason


class UnknownServiceError(ServiceError):
    """A function node refers to a service that is not in the registry."""


class AccessDeniedError(ServiceError):
    """The caller does not have the right to invoke the service (ACL)."""


class XMLSchemaIntError(ReproError):
    """An XML Schema_int document is malformed or uses unsupported features."""
