"""Deterministic finite automata over a closed alphabet.

All DFA operations here work relative to a fixed :class:`Alphabet`
(labels, function names and the ``OTHER`` catch-all).  This is how the
paper's requirement that the complement automaton be "deterministic and
complete, namely each state has outgoing edges for all possible letters"
(Figure 3, step 4) stays finite: any letter outside the alphabet is
folded onto ``OTHER`` before running the automaton.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.automata.nfa import NFA
from repro.automata.symbols import Alphabet, concretize_class


@dataclass
class DFA:
    """A (possibly partial) deterministic automaton.

    Attributes:
        alphabet: the closed alphabet the DFA is defined over.
        initial: initial state id.
        accepting: set of accepting state ids.
        transitions: ``state -> symbol -> state`` (missing entries mean the
            word is rejected from there unless the DFA was completed).
    """

    alphabet: Alphabet
    initial: int
    accepting: FrozenSet[int]
    transitions: Dict[int, Dict[str, int]] = field(default_factory=dict)

    @property
    def n_states(self) -> int:
        states = {self.initial} | set(self.accepting)
        for source, row in self.transitions.items():
            states.add(source)
            states.update(row.values())
        return len(states)

    def states(self) -> FrozenSet[int]:
        """All state ids mentioned by this DFA."""
        found: Set[int] = {self.initial} | set(self.accepting)
        for source, row in self.transitions.items():
            found.add(source)
            found.update(row.values())
        return frozenset(found)

    def step(self, state: int, symbol: str) -> Optional[int]:
        """The successor of ``state`` on ``symbol`` (folded to the alphabet)."""
        return self.transitions.get(state, {}).get(self.alphabet.canon(symbol))

    def run(self, word: Sequence[str]) -> Optional[int]:
        """The state reached after reading ``word``, or None if stuck."""
        state: Optional[int] = self.initial
        for symbol in word:
            if state is None:
                return None
            state = self.step(state, symbol)
        return state

    def accepts(self, word: Sequence[str]) -> bool:
        """True iff ``word`` is in the DFA's language."""
        state = self.run(word)
        return state is not None and state in self.accepting

    def is_complete(self) -> bool:
        """True iff every state has a transition for every alphabet symbol."""
        for state in self.states():
            row = self.transitions.get(state, {})
            if any(symbol not in row for symbol in self.alphabet):
                return False
        return True

    def sink_states(self) -> FrozenSet[int]:
        """States from which every transition loops back to the state itself.

        Accepting sinks of the *complement* automaton are the "sink nodes"
        exploited by the lazy variant of Section 7 (Figure 12): once the
        product reaches one, the branch can be pruned and marked at once.
        """
        sinks: Set[int] = set()
        for state in self.states():
            row = self.transitions.get(state, {})
            if row and all(target == state for target in row.values()):
                sinks.add(state)
        return frozenset(sinks)


def widen_alphabet(dfa: DFA, alphabet: Alphabet) -> DFA:
    """Reinterpret a DFA over a larger alphabet, preserving its language.

    In the original DFA a symbol outside its alphabet folds onto
    ``OTHER``; once the symbol becomes a first-class member of the wider
    alphabet, each state must treat it exactly like it treated ``OTHER``
    before — otherwise completing the widened DFA would silently turn
    those words into rejections (fatal for complement automata).
    """
    from repro.automata.symbols import OTHER

    if alphabet.symbols == dfa.alphabet.symbols:
        return dfa
    if not dfa.alphabet.symbols <= alphabet.symbols:
        raise ValueError("widen_alphabet cannot drop symbols")
    new_symbols = alphabet.symbols - dfa.alphabet.symbols
    states = dfa.states()
    # States without an ``OTHER`` fallback rejected unknown symbols by
    # getting stuck; the widened DFA must keep rejecting them, but
    # *explicitly* — routing the new symbols to a rejecting sink — so the
    # widened automaton never silently drops letters and completion (for
    # complementation) cannot reinterpret the omission.
    needs_sink = any(
        OTHER not in dfa.transitions.get(state, {}) for state in states
    )
    sink = (max(states) + 1 if states else dfa.initial + 1) if needs_sink else None
    transitions: Dict[int, Dict[str, int]] = {}
    for state in states:
        row = dict(dfa.transitions.get(state, {}))
        fallback = row.get(OTHER, sink)
        for symbol in new_symbols:
            row.setdefault(symbol, fallback)
        transitions[state] = row
    if sink is not None:
        transitions[sink] = {symbol: sink for symbol in alphabet}
    return DFA(alphabet, dfa.initial, dfa.accepting, transitions)


def determinize(nfa: NFA, alphabet: Alphabet) -> DFA:
    """Subset construction relative to a closed alphabet.

    Wildcard guards are concretized against the alphabet, so the result is
    an ordinary DFA over concrete symbols.  Worst case exponential — this
    is exactly the blow-up the paper warns about for nondeterministic
    regular expressions (Section 4), and benchmark E8 measures it.

    States are numbered in BFS discovery order over the *sorted* alphabet,
    so structurally equal NFAs determinize to byte-identical DFAs no
    matter in which order their transition lists were built — the
    canonical numbering the compile-cache digests and the persistent
    artifact store rely on.
    """
    from collections import deque

    start = nfa.epsilon_closure((nfa.initial,))
    ids: Dict[FrozenSet[int], int] = {start: 0}
    worklist: deque = deque((start,))
    transitions: Dict[int, Dict[str, int]] = {}
    accepting: Set[int] = set()
    if start & nfa.accepting:
        accepting.add(0)

    while worklist:
        subset = worklist.popleft()
        source = ids[subset]
        row = transitions.setdefault(source, {})
        # Group targets per concrete alphabet symbol.
        per_symbol: Dict[str, Set[int]] = {}
        for state in subset:
            for guard, target in nfa.edges_from(state):
                for symbol in concretize_class(guard, alphabet):
                    per_symbol.setdefault(symbol, set()).add(target)
        for symbol in sorted(per_symbol):
            closure = nfa.epsilon_closure(per_symbol[symbol])
            if closure not in ids:
                ids[closure] = len(ids)
                worklist.append(closure)
                if closure & nfa.accepting:
                    accepting.add(ids[closure])
            row[symbol] = ids[closure]

    return DFA(
        alphabet=alphabet,
        initial=0,
        accepting=frozenset(accepting),
        transitions=transitions,
    )


def complete(dfa: DFA) -> DFA:
    """Add a rejecting sink so every state covers the whole alphabet."""
    states = dfa.states()
    transitions = {s: dict(dfa.transitions.get(s, {})) for s in states}
    needs_sink = any(
        symbol not in row for row in transitions.values() for symbol in dfa.alphabet
    )
    if not needs_sink:
        return DFA(dfa.alphabet, dfa.initial, dfa.accepting, transitions)
    # The sink must be a *fresh* state id.  ``states()`` always contains
    # the initial state, but stay defensive about degenerate automata:
    # basing the fallback on ``dfa.initial`` keeps the sink distinct from
    # the initial state even for an empty state set (the old ``else 1``
    # collided with ``initial = 0``).
    sink = max(states) + 1 if states else dfa.initial + 1
    transitions[sink] = {symbol: sink for symbol in dfa.alphabet}
    for state in states:
        row = transitions[state]
        for symbol in dfa.alphabet:
            row.setdefault(symbol, sink)
    return DFA(dfa.alphabet, dfa.initial, dfa.accepting, transitions)


def complement(dfa: DFA) -> DFA:
    """The complement automaton: complete, then flip acceptance.

    This is the automaton called ``Ā`` in Figure 3 (see Figures 5 and 7
    for the paper's worked examples).
    """
    completed = complete(dfa)
    rejecting = frozenset(completed.states() - completed.accepting)
    return DFA(
        completed.alphabet, completed.initial, rejecting, completed.transitions
    )


def minimize_hopcroft(dfa: DFA) -> DFA:
    """Hopcroft's O(n·|Σ|·log n) minimization of a complete DFA.

    Same result as :func:`minimize` (Moore's algorithm — the two are
    cross-validated by property tests) but asymptotically faster: the
    splitter worklist only ever keeps the smaller half of each split.
    """
    completed = complete(dfa)
    reachable: Set[int] = set()
    stack = [completed.initial]
    while stack:
        state = stack.pop()
        if state in reachable:
            continue
        reachable.add(state)
        stack.extend(completed.transitions.get(state, {}).values())

    symbols = sorted(completed.alphabet)
    # Reverse transition index: (symbol, target) -> sources.
    reverse: Dict[Tuple[str, int], Set[int]] = {}
    for state in reachable:
        for symbol in symbols:
            target = completed.transitions[state][symbol]
            reverse.setdefault((symbol, target), set()).add(state)

    accepting = frozenset(reachable & completed.accepting)
    rejecting = frozenset(reachable - completed.accepting)
    partition: List[Set[int]] = [set(block) for block in (accepting, rejecting) if block]
    # Which block each state currently belongs to.
    block_of: Dict[int, int] = {}
    for index, block in enumerate(partition):
        for state in block:
            block_of[state] = index

    from collections import deque

    worklist: deque = deque()
    queued: Set[Tuple[str, int]] = set()

    def push(symbol: str, index: int) -> None:
        if (symbol, index) not in queued:
            queued.add((symbol, index))
            worklist.append((symbol, index))

    if len(partition) == 2:
        smaller = min(range(2), key=lambda i: len(partition[i]))
        for symbol in symbols:
            push(symbol, smaller)
    else:
        for symbol in symbols:
            push(symbol, 0)

    while worklist:
        symbol, splitter_index = worklist.popleft()
        queued.discard((symbol, splitter_index))
        splitter = partition[splitter_index]
        # States with a `symbol`-edge into the splitter.
        movers: Set[int] = set()
        for target in splitter:
            movers |= reverse.get((symbol, target), set())
        if not movers:
            continue
        # Split every block crossed by `movers`.
        touched: Dict[int, Set[int]] = {}
        for state in movers:
            touched.setdefault(block_of[state], set()).add(state)
        for index, inside in touched.items():
            block = partition[index]
            if len(inside) == len(block):
                continue  # not split
            outside = block - inside
            partition[index] = inside
            new_index = len(partition)
            partition.append(outside)
            for state in inside:
                block_of[state] = index
            for state in outside:
                block_of[state] = new_index
            smaller_index = index if len(inside) <= len(outside) else new_index
            for sym in symbols:
                if (sym, index) in queued:
                    # The queued entry now denotes `inside`; the other
                    # half must be processed too, or the refinement
                    # under-splits (Hopcroft's bookkeeping rule).
                    push(sym, new_index)
                else:
                    push(sym, smaller_index)

    transitions: Dict[int, Dict[str, int]] = {}
    new_accepting: Set[int] = set()
    for state in reachable:
        block = block_of[state]
        row = transitions.setdefault(block, {})
        for symbol in symbols:
            row[symbol] = block_of[completed.transitions[state][symbol]]
        if state in completed.accepting:
            new_accepting.add(block)

    # Canonical numbering: BFS from the initial block over the sorted
    # alphabet.  Structurally equal inputs then minimize to *identical*
    # automata (state 0 initial), which renderings, digests and the
    # persistent artifact store all rely on.
    order: Dict[int, int] = {block_of[completed.initial]: 0}
    queue = [block_of[completed.initial]]
    while queue:
        block = queue.pop(0)
        for symbol in symbols:
            target = transitions[block][symbol]
            if target not in order:
                order[target] = len(order)
                queue.append(target)
    return DFA(
        completed.alphabet,
        0,
        frozenset(order[block] for block in new_accepting),
        {
            order[block]: {
                symbol: order[target] for symbol, target in row.items()
            }
            for block, row in transitions.items()
        },
    )


def minimize(dfa: DFA) -> DFA:
    """Moore's partition-refinement minimization of a complete DFA.

    The input is completed first; unreachable states are dropped.  Used to
    normalize automata in tests and to keep the complement small before
    the product construction.  See :func:`minimize_hopcroft` for the
    asymptotically faster variant.
    """
    completed = complete(dfa)
    reachable: Set[int] = set()
    stack = [completed.initial]
    while stack:
        state = stack.pop()
        if state in reachable:
            continue
        reachable.add(state)
        stack.extend(completed.transitions.get(state, {}).values())

    # Initial partition: accepting vs non-accepting (reachable only).
    partition: Dict[int, int] = {
        s: (1 if s in completed.accepting else 0) for s in reachable
    }
    symbols = sorted(completed.alphabet)
    while True:
        signature: Dict[int, Tuple] = {}
        for state in reachable:
            row = completed.transitions.get(state, {})
            signature[state] = (
                partition[state],
                tuple(partition[row[symbol]] for symbol in symbols),
            )
        blocks: Dict[Tuple, int] = {}
        new_partition: Dict[int, int] = {}
        for state in sorted(reachable):
            block = blocks.setdefault(signature[state], len(blocks))
            new_partition[state] = block
        if new_partition == partition:
            break
        partition = new_partition

    transitions: Dict[int, Dict[str, int]] = {}
    accepting: Set[int] = set()
    for state in reachable:
        block = partition[state]
        row = transitions.setdefault(block, {})
        for symbol in symbols:
            row[symbol] = partition[completed.transitions[state][symbol]]
        if state in completed.accepting:
            accepting.add(block)
    return DFA(
        completed.alphabet,
        partition[completed.initial],
        frozenset(accepting),
        transitions,
    )
