"""The Glushkov (position) automaton.

For a regex with ``n`` symbol occurrences ("positions"), the Glushkov
automaton has ``n + 1`` states, no epsilon transitions, and — crucially
for the paper's complexity argument — it is **deterministic precisely
when the regex is one-unambiguous**, the class of content models XML
Schema enforces.  This keeps the complement construction of Figure 3
polynomial for standards-compliant schemas (Section 4, "Complexity").

Bounded repetitions ``r{m,n}`` are first unfolded into nested optional
sequences so that determinism of counting is preserved:
``r{0,2}`` becomes ``(r.(r)?)?`` rather than ``r?.r?`` (the latter has a
nondeterministic position automaton even though counting is obviously
deterministic).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.automata.nfa import NFA
from repro.regex.ast import (
    Alt,
    AnySymbol,
    Atom,
    Empty,
    Epsilon,
    Regex,
    Repeat,
    Seq,
    Star,
    EPSILON,
    alt,
    opt,
    seq,
    star,
)
from repro.automata.symbols import SymbolClass


def expand_repeats(r: Regex) -> Regex:
    """Unfold every bounded ``Repeat`` into Seq/Alt/Star form.

    ``r{m,}``  → ``r^m . r*``
    ``r{m,n}`` → ``r^m . (r.(r.(...)?)?)?``  (n - m nested optionals)
    """
    if isinstance(r, (Epsilon, Empty, Atom, AnySymbol)):
        return r
    if isinstance(r, Seq):
        return seq(*(expand_repeats(item) for item in r.items))
    if isinstance(r, Alt):
        return alt(*(expand_repeats(option) for option in r.options))
    if isinstance(r, Star):
        return star(expand_repeats(r.item))
    if isinstance(r, Repeat):
        inner = expand_repeats(r.item)
        required = [inner] * r.low
        if r.high is None:
            return seq(*required, star(inner))
        optional: Regex = EPSILON
        for _ in range(r.high - r.low):
            optional = _nested_opt(inner, optional)
        return seq(*required, optional)
    raise TypeError("unknown regex node %r" % (r,))


def _nested_opt(inner: Regex, tail: Regex) -> Regex:
    """One layer of the nested-optional unfolding: ``(inner.tail) | eps``.

    Built with an explicit epsilon alternative rather than ``opt`` so the
    result contains no ``Repeat`` node (``opt`` would recreate one).
    """
    return alt(seq(inner, tail), EPSILON)


@dataclass
class _Positions:
    """Position bookkeeping for the Glushkov construction."""

    guards: List[SymbolClass]  # guard of each position, 1-based via index+1
    nullable: bool
    first: Set[int]
    last: Set[int]
    follow: Dict[int, Set[int]]


def _analyze(r: Regex, guards: List[SymbolClass]) -> _Positions:
    """Compute first/last/follow position sets, allocating positions."""
    if isinstance(r, (Epsilon, Empty)):
        return _Positions(guards, isinstance(r, Epsilon), set(), set(), {})
    if isinstance(r, (Atom, AnySymbol)):
        guards.append(r.symbol if isinstance(r, Atom) else r)
        position = len(guards)  # positions are 1-based; 0 is the initial state
        return _Positions(guards, False, {position}, {position}, {position: set()})
    if isinstance(r, Seq):
        result = _analyze(r.items[0], guards)
        for item in r.items[1:]:
            rhs = _analyze(item, guards)
            for position in result.last:
                result.follow.setdefault(position, set()).update(rhs.first)
            result.follow.update(
                {p: result.follow.get(p, set()) | rhs.follow.get(p, set())
                 for p in rhs.follow}
            )
            if result.nullable:
                result.first |= rhs.first
            if rhs.nullable:
                result.last |= rhs.last
            else:
                result.last = set(rhs.last)
            result.nullable = result.nullable and rhs.nullable
        return result
    if isinstance(r, Alt):
        parts = [_analyze(option, guards) for option in r.options]
        merged = _Positions(guards, any(p.nullable for p in parts), set(), set(), {})
        for part in parts:
            merged.first |= part.first
            merged.last |= part.last
            for position, followers in part.follow.items():
                merged.follow.setdefault(position, set()).update(followers)
        return merged
    if isinstance(r, Star):
        inner = _analyze(r.item, guards)
        for position in inner.last:
            inner.follow.setdefault(position, set()).update(inner.first)
        inner.nullable = True
        return inner
    if isinstance(r, Repeat):
        return _analyze(expand_repeats(r), guards)
    raise TypeError("unknown regex node %r" % (r,))


def glushkov_nfa(r: Regex) -> NFA:
    """Build the position automaton of ``r``.

    State 0 is initial; state ``i`` (``1 <= i <= n``) corresponds to the
    i-th symbol occurrence of the (repeat-expanded) expression.  The
    automaton has no epsilon transitions and accepts exactly ``lang(r)``.
    """
    expanded = expand_repeats(r)
    guards: List[SymbolClass] = []
    info = _analyze(expanded, guards)

    transitions: Dict[int, List[Tuple[SymbolClass, int]]] = {}
    for target in info.first:
        transitions.setdefault(0, []).append((guards[target - 1], target))
    for source, followers in info.follow.items():
        for target in followers:
            transitions.setdefault(source, []).append((guards[target - 1], target))

    accepting = set(info.last)
    if info.nullable:
        accepting.add(0)
    return NFA(
        n_states=len(guards) + 1,
        initial=0,
        accepting=frozenset(accepting),
        transitions=transitions,
        epsilon={},
    )
