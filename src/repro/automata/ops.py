"""Language-level operations on automata.

These power the schema-compatibility check of Section 6 (inclusion and
equivalence), the tests (word enumeration against the reference regex
matcher), and the simulated services (seeded word sampling from declared
output types).
"""

from __future__ import annotations

import random
from typing import Iterator, List, Optional, Tuple

from repro.automata.dfa import DFA, complement, complete, determinize
from repro.automata.glushkov import glushkov_nfa
from repro.automata.symbols import Alphabet, regex_symbols
from repro.obs import context as obs
from repro.obs.metrics import record_work
from repro.regex.ast import Regex


def regex_to_dfa(r: Regex, alphabet: Optional[Alphabet] = None) -> DFA:
    """Compile a regex to a DFA over the given (or inferred) alphabet."""
    if alphabet is None:
        alphabet = Alphabet.closure(regex_symbols(r))
    return determinize(glushkov_nfa(r), alphabet)


def is_empty(dfa: DFA) -> bool:
    """True iff the DFA's language is empty."""
    seen = set()
    stack = [dfa.initial]
    while stack:
        state = stack.pop()
        if state in seen:
            continue
        seen.add(state)
        if state in dfa.accepting:
            return False
        stack.extend(dfa.transitions.get(state, {}).values())
    return True


def _product(left: DFA, right: DFA, minimized: bool = False) -> Tuple[DFA, dict]:
    """Synchronous product of two complete DFAs over the same alphabet.

    Returns the product DFA (acceptance left to the caller to define) and
    the mapping from product ids back to state pairs.  Each build is
    reported to the observability layer (a ``product`` span with the
    operand and product sizes, plus the ``repro_dfa_product_states``
    histogram) — inclusion/equivalence checks are where the Section 6
    compatibility test spends its time.  ``minimized`` records whether
    the caller fed Hopcroft-minimized operands, so before/after product
    sizes are separable in the histogram.
    """
    label = "true" if minimized else "false"
    with obs.tracer().span(
        "product", op="dfa", left_states=left.n_states,
        right_states=right.n_states, minimized=label,
    ) as span:
        product, pairs = _product_inner(left, right)
        span.set(product_states=len(pairs))
    metrics = obs.metrics()
    if metrics.enabled:
        metrics.histogram(
            "repro_dfa_product_states", "Synchronous DFA product sizes"
        ).observe(len(pairs), minimized=label)
        record_work(
            metrics, "product",
            {"dfa_products": 1, "product_states": len(pairs)},
            core="dict",
        )
    return product, pairs


def _product_inner(left: DFA, right: DFA) -> Tuple[DFA, dict]:
    if left.alphabet.symbols != right.alphabet.symbols:
        from repro.automata.dfa import widen_alphabet

        merged = Alphabet.closure(left.alphabet.symbols, right.alphabet.symbols)
        left = widen_alphabet(left, merged)
        right = widen_alphabet(right, merged)
    left = complete(left)
    right = complete(right)
    ids = {(left.initial, right.initial): 0}
    pairs = {0: (left.initial, right.initial)}
    worklist = [(left.initial, right.initial)]
    transitions: dict = {}
    while worklist:
        pair = worklist.pop()
        source = ids[pair]
        row = transitions.setdefault(source, {})
        for symbol in left.alphabet:
            target = (
                left.transitions[pair[0]][symbol],
                right.transitions[pair[1]][symbol],
            )
            if target not in ids:
                ids[target] = len(ids)
                pairs[ids[target]] = target
                worklist.append(target)
            row[symbol] = ids[target]
    product = DFA(left.alphabet, 0, frozenset(), transitions)
    return product, pairs


def intersects(left: DFA, right: DFA, minimized: bool = False) -> bool:
    """True iff the two languages share at least one word.

    On the bitset core (``REPRO_AUTOMATA_CORE=bitset``) this is an
    early-exit pair search over flat transition tables — no product
    automaton is materialized.
    """
    from repro.automata import core as automata_core

    if automata_core.use_bitset():
        from repro.automata.bitset import bit_intersects, from_dfa

        with obs.tracer().span(
            "product", op="bitset", left_states=left.n_states,
            right_states=right.n_states,
        ):
            return bit_intersects(from_dfa(left), from_dfa(right))
    product, pairs = _product(left, right, minimized=minimized)
    accepting = frozenset(
        pid
        for pid, (l, r) in pairs.items()
        if l in left.accepting and r in right.accepting
    )
    return not is_empty(
        DFA(product.alphabet, product.initial, accepting, product.transitions)
    )


def language_subset(left: DFA, right: DFA, minimized: bool = False) -> bool:
    """True iff ``lang(left) ⊆ lang(right)``.

    Pass ``minimized=True`` when the operands are already
    Hopcroft-minimized (complementation preserves both completeness and
    minimality), so the product-size histogram attributes the build
    correctly.

    On the bitset core the complement is never built: an early-exit pair
    search fails on the first reachable pair accepting on the left but
    not on the right.  (For inclusion against a *nondeterministic*
    automaton, see :func:`repro.automata.bitset.antichain_language_subset`
    — cached as ``CompilationCache.antichain_subset`` — which also skips
    the subset construction.)
    """
    from repro.automata import core as automata_core

    if automata_core.use_bitset():
        from repro.automata.bitset import bit_subset, from_dfa

        with obs.tracer().span(
            "product", op="bitset", left_states=left.n_states,
            right_states=right.n_states,
        ):
            return bit_subset(from_dfa(left), from_dfa(right))
    return not intersects(left, complement(right), minimized=minimized)


def language_equal(left: DFA, right: DFA, minimized: bool = False) -> bool:
    """True iff the two automata define the same language."""
    return language_subset(left, right, minimized=minimized) and language_subset(
        right, left, minimized=minimized
    )


def shortest_words(dfa: DFA, limit: int = 10) -> Iterator[Tuple[str, ...]]:
    """Yield up to ``limit`` accepted words in length-then-lexical order."""
    emitted = 0
    frontier: List[Tuple[Tuple[str, ...], int]] = [((), dfa.initial)]
    seen = {((), dfa.initial)}
    while frontier and emitted < limit:
        next_frontier: List[Tuple[Tuple[str, ...], int]] = []
        for word, state in frontier:
            if state in dfa.accepting:
                yield word
                emitted += 1
                if emitted >= limit:
                    return
            for symbol in sorted(dfa.transitions.get(state, {})):
                target = dfa.transitions[state][symbol]
                entry = (word + (symbol,), target)
                if entry not in seen:
                    seen.add(entry)
                    next_frontier.append(entry)
        frontier = next_frontier


def sample_word(
    dfa: DFA,
    rng: random.Random,
    stop_probability: float = 0.4,
    max_length: int = 24,
    weight=None,
) -> Tuple[str, ...]:
    """Sample a random accepted word, used by the service simulator.

    The walk prefers to stop once it stands on an accepting state (with
    probability ``stop_probability``) and falls back to the shortest
    accepted completion when ``max_length`` is hit, so sampling always
    terminates with a valid word.

    ``weight`` optionally maps each symbol to a positive sampling weight
    (default 1.0 each); the instance generator uses it to bias documents
    toward — or away from — intensional content.

    Raises ValueError when the language is empty.
    """
    if is_empty(dfa):
        raise ValueError("cannot sample from an empty language")
    distance = _distance_to_accepting(dfa)
    word: List[str] = []
    state = dfa.initial
    while True:
        if state in dfa.accepting and (
            len(word) >= max_length or rng.random() < stop_probability
        ):
            return tuple(word)
        viable = [
            (symbol, target)
            for symbol, target in sorted(dfa.transitions.get(state, {}).items())
            if distance.get(target) is not None
        ]
        if not viable:
            return tuple(word)  # accepting with no live successors
        if len(word) >= max_length:
            # Head straight for the closest accepting state.
            viable.sort(key=lambda item: distance[item[1]])
            symbol, state = viable[0]
        elif weight is None:
            symbol, state = rng.choice(viable)
        else:
            weights = [max(1e-9, float(weight(s))) for s, _t in viable]
            symbol, state = rng.choices(viable, weights=weights, k=1)[0]
        word.append(symbol)


def _distance_to_accepting(dfa: DFA) -> dict:
    """BFS distance from each state to the nearest accepting state."""
    reverse: dict = {}
    for source, row in dfa.transitions.items():
        for target in row.values():
            reverse.setdefault(target, set()).add(source)
    distance = {state: 0 for state in dfa.accepting}
    frontier = list(dfa.accepting)
    while frontier:
        next_frontier = []
        for state in frontier:
            for previous in reverse.get(state, ()):
                if previous not in distance:
                    distance[previous] = distance[state] + 1
                    next_frontier.append(previous)
        frontier = next_frontier
    return distance
