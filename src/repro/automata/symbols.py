"""Alphabets over element labels and function names.

The words manipulated by the rewriting algorithms are sequences of
*symbols*: element labels, function names, or the two reserved symbols
below.  The universe of possible labels is unbounded (a service may in
principle return elements with labels nobody declared), yet the paper's
complement automaton must be **complete** — it needs an outgoing edge for
"all possible letters" (Figure 3 step 4, and the ``*`` edges of Figures 5
and 7).

We keep completeness finite the standard way: each problem instance fixes
a finite :class:`Alphabet` containing every symbol that is *relevant* (it
appears in the document word, in the target type, or in a reachable
function signature) plus the catch-all :data:`OTHER`.  Any concrete symbol
outside the relevant set behaves exactly like ``OTHER``, so running an
automaton over arbitrary documents is still well defined.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import FrozenSet, Iterable, Set, Union

from repro.regex.ast import AnySymbol, Atom, Regex


def intern_symbol(symbol: str) -> str:
    """Hash-cons a symbol so repeated occurrences share one object.

    Labels, function names and attribute names recur across every node of
    a document and every automaton alphabet; interning them makes symbol
    equality an identity check on the hot comparison paths and collapses
    per-node string storage to shared references.
    """
    return sys.intern(symbol)


#: Reserved symbol standing for atomic character data (the ``data`` keyword).
DATA = intern_symbol("#data")

#: Catch-all symbol: "any letter not otherwise in the alphabet".
OTHER = intern_symbol("#other")

#: Placeholder emitted when enumerating words of wildcard-bearing regexes.
ANY_PLACEHOLDER = OTHER

#: Transition guards are either a concrete symbol or a wildcard class.
SymbolClass = Union[str, AnySymbol]


@dataclass(frozen=True)
class Alphabet:
    """A finite, closed alphabet for one rewriting problem instance.

    ``symbols`` always contains :data:`OTHER`; :meth:`canon` maps any
    concrete symbol into the alphabet by folding unknown symbols onto
    ``OTHER``.
    """

    symbols: FrozenSet[str]

    @staticmethod
    def closure(*symbol_sets: Iterable[str]) -> "Alphabet":
        """Build the closed alphabet over the union of the given sets."""
        merged: Set[str] = {OTHER}
        for symbol_set in symbol_sets:
            merged.update(symbol_set)
        return Alphabet(frozenset(merged))

    def canon(self, symbol: str) -> str:
        """Fold a concrete symbol into this alphabet (unknown → OTHER)."""
        return symbol if symbol in self.symbols else OTHER

    def canon_word(self, word: Iterable[str]) -> tuple:
        """Fold every symbol of a word into this alphabet."""
        return tuple(self.canon(symbol) for symbol in word)

    def __contains__(self, symbol: str) -> bool:
        return symbol in self.symbols

    def __iter__(self):
        return iter(sorted(self.symbols))

    def __len__(self) -> int:
        return len(self.symbols)


def class_matches(guard: SymbolClass, symbol: str) -> bool:
    """True iff transition guard ``guard`` accepts the concrete ``symbol``."""
    if isinstance(guard, AnySymbol):
        return symbol not in guard.exclude
    return guard == symbol


def concretize_class(guard: SymbolClass, alphabet: Alphabet) -> FrozenSet[str]:
    """The set of alphabet symbols a guard matches.

    Wildcards match everything in the alphabet except their exclusions —
    including :data:`OTHER`, which is how "an element with any label at
    all" stays representable after closure.
    """
    if isinstance(guard, AnySymbol):
        return frozenset(s for s in alphabet.symbols if s not in guard.exclude)
    if guard in alphabet:
        return frozenset((guard,))
    return frozenset()


def regex_symbols(r: Regex) -> FrozenSet[str]:
    """All concrete symbols mentioned in a regex (wildcard exclusions too)."""
    found: Set[str] = set()
    for node in r.walk():
        if isinstance(node, Atom):
            found.add(node.symbol)
        elif isinstance(node, AnySymbol):
            found.update(node.exclude)
    return frozenset(found)
