"""Finite-state machinery behind the rewriting algorithms.

The paper's algorithms (Figures 3 and 9) manipulate finite automata built
from the regular expressions of schemas:

- :mod:`repro.automata.symbols` — alphabets over labels and function
  names, with the ``OTHER`` catch-all that keeps *complete* automata
  finite even though the universe of labels is unbounded;
- :mod:`repro.automata.glushkov` — the position (Glushkov) automaton,
  which is deterministic exactly for one-unambiguous expressions (the
  class XML Schema enforces);
- :mod:`repro.automata.nfa` / :mod:`repro.automata.dfa` — nondeterministic
  and deterministic automata with the standard constructions the paper
  relies on: subset construction, completion, complementation and
  minimization;
- :mod:`repro.automata.ops` — emptiness, inclusion, equivalence and word
  enumeration/sampling used by tests, Section 6 and the service simulator;
- :mod:`repro.automata.bitset` — the flat, integer-indexed re-encoding
  of the same pipeline (state sets as int bitsets, antichain inclusion),
  selected via ``REPRO_AUTOMATA_CORE`` (:mod:`repro.automata.core`).
"""

from repro.automata.bitset import (
    BitDFA,
    antichain_language_subset,
    bit_complement,
    bit_determinize,
    bit_intersects,
    bit_minimize,
    bit_subset,
    from_dfa,
)
from repro.automata.core import BITSET, DICT, active_core, use_bitset, using_core
from repro.automata.dfa import (
    DFA,
    complement,
    complete,
    determinize,
    minimize,
    minimize_hopcroft,
    widen_alphabet,
)
from repro.automata.glushkov import glushkov_nfa
from repro.automata.nfa import NFA
from repro.automata.ops import (
    intersects,
    is_empty,
    language_equal,
    language_subset,
    sample_word,
    shortest_words,
)
from repro.automata.dot import dfa_to_dot, expansion_to_dot, product_to_dot
from repro.automata.symbols import (
    ANY_PLACEHOLDER,
    DATA,
    OTHER,
    Alphabet,
    class_matches,
    concretize_class,
)

__all__ = [
    "DFA",
    "NFA",
    "glushkov_nfa",
    "determinize",
    "complete",
    "complement",
    "minimize",
    "minimize_hopcroft",
    "widen_alphabet",
    "is_empty",
    "intersects",
    "language_subset",
    "language_equal",
    "shortest_words",
    "sample_word",
    "DATA",
    "OTHER",
    "ANY_PLACEHOLDER",
    "Alphabet",
    "class_matches",
    "concretize_class",
    "dfa_to_dot",
    "expansion_to_dot",
    "product_to_dot",
    "BitDFA",
    "from_dfa",
    "bit_determinize",
    "bit_minimize",
    "bit_complement",
    "bit_subset",
    "bit_intersects",
    "antichain_language_subset",
    "BITSET",
    "DICT",
    "active_core",
    "use_bitset",
    "using_core",
]
