"""Selection of the active automata core (``dict`` vs ``bitset``).

The rewriting stack has two interchangeable engines for the Figure 3 / 9
pipelines:

- ``dict`` — the original dict-of-dicts :class:`repro.automata.dfa.DFA`
  pipeline with the per-node marking game (the reference
  implementation);
- ``bitset`` — flat, integer-indexed automata
  (:mod:`repro.automata.bitset`) with state sets as Python int bitsets
  and a vectorized marking fixpoint
  (:mod:`repro.rewriting.bitgame`).

Both produce identical verdicts, decisions and rewritten documents — the
conformance fuzzer's ``bitset-core`` configuration compares them
byte-for-byte.  The knob is the ``REPRO_AUTOMATA_CORE`` environment
variable (read per call, so tests can monkeypatch it), with
:func:`using_core` as a process-local override for harnesses that must
flip cores mid-run without touching the environment.
"""

from __future__ import annotations

import os
from typing import Optional

#: The reference dict-of-dicts pipeline (the default).
DICT = "dict"

#: The flat bitset pipeline with the vectorized game solver.
BITSET = "bitset"

_VALID = (DICT, BITSET)

#: Environment knob naming the active core.
ENV_CORE = "REPRO_AUTOMATA_CORE"

_override: Optional[str] = None


def active_core() -> str:
    """The core name currently in effect (override beats environment)."""
    if _override is not None:
        return _override
    value = os.environ.get(ENV_CORE, DICT).strip().lower() or DICT
    if value not in _VALID:
        raise ValueError(
            "%s must be one of %s, got %r" % (ENV_CORE, "/".join(_VALID), value)
        )
    return value


def use_bitset() -> bool:
    """True iff the bitset core should run the automata pipelines."""
    return active_core() == BITSET


class using_core:
    """Context manager pinning the active core, nestable and re-entrant.

    The differential harness uses it to run the same scenario under both
    cores inside one process::

        with using_core("bitset"):
            analysis = analyze_safe(word, outputs, target)
    """

    def __init__(self, name: str):
        if name not in _VALID:
            raise ValueError(
                "core must be one of %s, got %r" % ("/".join(_VALID), name)
            )
        self._name = name
        self._saved: Optional[str] = None

    def __enter__(self) -> "using_core":
        global _override
        self._saved = _override
        _override = self._name
        return self

    def __exit__(self, *_exc) -> None:
        global _override
        _override = self._saved
