"""Nondeterministic finite automata over symbol-class guards.

States are consecutive integers.  Transitions carry a *guard*: either a
concrete symbol or a wildcard class (:class:`~repro.regex.ast.AnySymbol`).
Epsilon transitions are kept separately; the Glushkov construction never
produces them, but renumbering/unions of NFAs may.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

from repro.automata.symbols import Alphabet, SymbolClass, class_matches


@dataclass
class NFA:
    """An epsilon-NFA with symbol-class guards.

    Attributes:
        n_states: number of states; states are ``0 .. n_states - 1``.
        initial: the single initial state.
        accepting: the set of accepting states.
        transitions: for each state, a list of ``(guard, target)`` pairs.
        epsilon: for each state, a list of epsilon targets.
    """

    n_states: int
    initial: int
    accepting: FrozenSet[int]
    transitions: Dict[int, List[Tuple[SymbolClass, int]]] = field(
        default_factory=dict
    )
    epsilon: Dict[int, List[int]] = field(default_factory=dict)

    def edges_from(self, state: int) -> List[Tuple[SymbolClass, int]]:
        """Labeled transitions leaving ``state``."""
        return self.transitions.get(state, [])

    def epsilon_from(self, state: int) -> List[int]:
        """Epsilon transitions leaving ``state``."""
        return self.epsilon.get(state, [])

    def epsilon_closure(self, states: Iterable[int]) -> FrozenSet[int]:
        """All states reachable from ``states`` via epsilon moves."""
        stack = list(states)
        closure: Set[int] = set(stack)
        while stack:
            state = stack.pop()
            for target in self.epsilon_from(state):
                if target not in closure:
                    closure.add(target)
                    stack.append(target)
        return frozenset(closure)

    def move(self, states: Iterable[int], symbol: str) -> FrozenSet[int]:
        """States reachable by reading ``symbol`` (before epsilon closure)."""
        targets: Set[int] = set()
        for state in states:
            for guard, target in self.edges_from(state):
                if class_matches(guard, symbol):
                    targets.add(target)
        return frozenset(targets)

    def accepts(self, word: Sequence[str]) -> bool:
        """True iff the NFA accepts ``word`` (concrete symbols)."""
        current = self.epsilon_closure((self.initial,))
        for symbol in word:
            current = self.epsilon_closure(self.move(current, symbol))
            if not current:
                return False
        return bool(current & self.accepting)

    def guards(self) -> Set[SymbolClass]:
        """All distinct transition guards of this automaton."""
        found: Set[SymbolClass] = set()
        for edges in self.transitions.values():
            for guard, _target in edges:
                found.add(guard)
        return found

    def concrete_symbols(self) -> FrozenSet[str]:
        """All concrete symbols mentioned by guards (wildcard exclusions too)."""
        from repro.regex.ast import AnySymbol

        symbols: Set[str] = set()
        for guard in self.guards():
            if isinstance(guard, AnySymbol):
                symbols.update(guard.exclude)
            else:
                symbols.add(guard)
        return frozenset(symbols)

    def is_deterministic(self, alphabet: Alphabet) -> bool:
        """True iff no state has two transitions matching the same symbol."""
        for state in range(self.n_states):
            if self.epsilon_from(state):
                return False
            for symbol in alphabet:
                matching = [
                    target
                    for guard, target in self.edges_from(state)
                    if class_matches(guard, symbol)
                ]
                if len(set(matching)) > 1 or len(matching) > len(set(matching)):
                    return False
        return True

    def renumbered(self, offset: int) -> "NFA":
        """A copy with every state id shifted by ``offset``."""
        return NFA(
            n_states=self.n_states,
            initial=self.initial + offset,
            accepting=frozenset(s + offset for s in self.accepting),
            transitions={
                s + offset: [(g, t + offset) for g, t in edges]
                for s, edges in self.transitions.items()
            },
            epsilon={
                s + offset: [t + offset for t in targets]
                for s, targets in self.epsilon.items()
            },
        )
