"""Graphviz DOT rendering of the paper's automata.

The paper communicates its algorithms through automata drawings
(Figures 4-8 and 10-12).  These helpers emit the same pictures from live
objects, so the figures can be *regenerated* rather than compared by
hand:

- :func:`expansion_to_dot` — ``A_w^k`` with fork nodes double-circled
  and invoke/return epsilon edges dashed (Figure 4);
- :func:`dfa_to_dot` — target and complement automata, sinks shaded
  (Figures 5, 7, 10);
- :func:`product_to_dot` — the marked product, bad nodes filled
  (Figures 6, 8) or the alive region of possible rewriting (Figure 11).

``examples/render_figures.py`` writes all of them to ``.dot`` files.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from repro.automata.dfa import DFA

if TYPE_CHECKING:  # imported lazily at runtime to avoid a package cycle
    from repro.rewriting.expansion import Expansion


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def expansion_to_dot(expansion: "Expansion", title: str = "A_w^k") -> str:
    """Render ``A_w^k``; fork nodes are double circles (Figure 4)."""
    fork_nodes = {edge.source for edge in expansion.fork_edges()}
    lines: List[str] = [
        "digraph {",
        '  label="%s"; rankdir=LR;' % _escape(title),
        "  node [shape=circle];",
    ]
    for state in range(expansion.n_states):
        attributes = []
        if state in fork_nodes:
            attributes.append("shape=doublecircle")
        if state == expansion.final:
            attributes.append("penwidth=2")
        if state == expansion.initial:
            attributes.append('xlabel="start"')
        lines.append(
            "  q%d [label=\"q%d\"%s];"
            % (state, state, (", " + ", ".join(attributes)) if attributes else "")
        )
    for edge in expansion.edges:
        if edge.kind == "symbol":
            label, style = str(edge.guard), "solid"
        elif edge.kind == "invoke":
            label, style = "ε (invoke)", "dashed"
        else:
            label, style = "ε (return)", "dotted"
        lines.append(
            '  q%d -> q%d [label="%s", style=%s];'
            % (edge.source, edge.target, _escape(label), style)
        )
    lines.append("}")
    return "\n".join(lines)


def dfa_to_dot(dfa: DFA, title: str = "DFA", collapse_other: bool = True) -> str:
    """Render a DFA; accepting states double-circled, sinks shaded.

    With ``collapse_other`` all symbols sharing a target from the same
    state collapse into one edge labelled like the paper's ``*`` edges.
    """
    sinks = dfa.sink_states()
    lines: List[str] = [
        "digraph {",
        '  label="%s"; rankdir=LR;' % _escape(title),
        "  node [shape=circle];",
    ]
    for state in sorted(dfa.states()):
        attributes = []
        if state in dfa.accepting:
            attributes.append("shape=doublecircle")
        if state in sinks:
            attributes.append('style=filled, fillcolor="lightgray"')
        if state == dfa.initial:
            attributes.append('xlabel="start"')
        lines.append(
            "  p%d [label=\"p%d\"%s];"
            % (state, state, (", " + ", ".join(attributes)) if attributes else "")
        )
    for state in sorted(dfa.states()):
        row = dfa.transitions.get(state, {})
        if collapse_other:
            by_target = {}
            for symbol, target in sorted(row.items()):
                by_target.setdefault(target, []).append(symbol)
            for target, symbols in sorted(by_target.items()):
                label = ", ".join(s for s in symbols if not s.startswith("#"))
                if any(s.startswith("#") for s in symbols):
                    label = (label + ", *") if label else "*"
                lines.append(
                    '  p%d -> p%d [label="%s"];'
                    % (state, target, _escape(label))
                )
        else:
            for symbol, target in sorted(row.items()):
                lines.append(
                    '  p%d -> p%d [label="%s"];'
                    % (state, target, _escape(symbol))
                )
    lines.append("}")
    return "\n".join(lines)


def product_to_dot(analysis, title: Optional[str] = None) -> str:
    """Render a solved safe-rewriting product with its marking.

    Marked (bad) nodes are filled, mirroring the colored nodes of
    Figures 6 and 8; fork pairs keep the dashed invoke edges.
    """
    from repro.rewriting.safe import alternatives

    title = title or "A_w^%d x complement" % analysis.k
    lines: List[str] = [
        "digraph {",
        '  label="%s"; rankdir=LR;' % _escape(title),
        "  node [shape=circle];",
    ]
    nodes = sorted(analysis.explored)
    ids = {node: index for index, node in enumerate(nodes)}
    for node in nodes:
        q, p = node
        attributes = []
        if analysis.is_marked(node):
            attributes.append('style=filled, fillcolor="salmon"')
        if node == analysis.initial:
            attributes.append('xlabel="start"')
        lines.append(
            '  n%d [label="[q%d,p%d]"%s];'
            % (ids[node], q, p,
               (", " + ", ".join(attributes)) if attributes else "")
        )
    for node in nodes:
        if analysis.is_marked(node):
            continue  # mirror the pruned look of Figure 12
        for alt in alternatives(analysis.expansion, analysis, node):
            edge = analysis.expansion.edge(alt.edge_id)
            if alt.is_fork:
                keep, invoke = alt.options
                if keep in ids:
                    lines.append(
                        '  n%d -> n%d [label="%s"];'
                        % (ids[node], ids[keep], _escape(str(edge.guard)))
                    )
                if invoke in ids:
                    lines.append(
                        '  n%d -> n%d [label="ε", style=dashed];'
                        % (ids[node], ids[invoke])
                    )
            else:
                succ = alt.options[0]
                if succ not in ids:
                    continue
                label = alt.symbol if alt.symbol else "ε"
                style = "dotted" if edge.kind == "return" else "solid"
                lines.append(
                    '  n%d -> n%d [label="%s", style=%s];'
                    % (ids[node], ids[succ], _escape(label), style)
                )
    lines.append("}")
    return "\n".join(lines)
