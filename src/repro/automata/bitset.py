"""Flat, integer-indexed automata with bitset state sets.

This is the raw-speed re-encoding of the Figure 3 pipeline: alphabet
symbols interned to dense ints, transition tables as per-symbol flat
tuples, and every state *set* — subset-construction subsets, Hopcroft
splitters, reachability frontiers, marking regions — a single Python
``int`` used as a bitmask.  Set union/intersection/difference become
``|``/``&``/``&~`` on machine words, which is where the ≥10x over the
dict-of-dicts core comes from: the dominant loops run in C.

The encoding is *canonical-compatible* with the dict pipeline:
:func:`bit_determinize` numbers subsets in BFS order over the sorted
alphabet and :func:`bit_minimize` renumbers blocks the same way, so

    ``bit_minimize(bit_determinize(nfa, Σ)).to_dfa()``

is byte-identical to ``minimize_hopcroft(determinize(nfa, Σ))`` — a
property the test suite pins on fuzzed regexes.  That identity is what
lets the compile cache hand out dict-DFA *views* of bitset artifacts
without recompiling anything.

:func:`antichain_language_subset` decides ``L(A) ⊆ L(N)`` directly
against the *nondeterministic* right-hand automaton (De Wulf et al.'s
antichain method), skipping the determinize → complete → complement →
product detour entirely — the fast path for the extensional
schema-compatibility checks of Section 6.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterator, List, Optional, Tuple

from repro.automata.dfa import DFA, complete
from repro.automata.nfa import NFA
from repro.automata.symbols import Alphabet, concretize_class
from repro.obs import context as obs
from repro.obs.metrics import record_work


def iter_bits(mask: int) -> Iterator[int]:
    """Yield the set bit positions of ``mask`` in increasing order."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


class BitDFA:
    """A complete DFA on flat per-symbol transition tuples.

    Attributes:
        alphabet: the closed alphabet (symbol order is ``sorted``).
        symbols: the dense symbol table, ``symbols[a]`` for symbol id ``a``.
        initial: the initial state id.
        n: number of states (ids are ``0 .. n-1``).
        accepting: bitmask of accepting states.
        delta: ``delta[a][q]`` — successor of ``q`` on symbol id ``a``.

    Instances are always complete (every ``delta[a][q]`` defined) and
    immutable after construction; the predecessor index is built lazily
    and dropped on pickling.
    """

    __slots__ = (
        "alphabet", "symbols", "initial", "n", "accepting", "delta",
        "_sym_id", "_pred", "_img_tables", "_pre_tables", "_img_singles",
    )

    def __init__(
        self,
        alphabet: Alphabet,
        initial: int,
        n: int,
        accepting: int,
        delta: Tuple[Tuple[int, ...], ...],
    ):
        self.alphabet = alphabet
        self.symbols: Tuple[str, ...] = tuple(alphabet)
        self.initial = initial
        self.n = n
        self.accepting = accepting
        self.delta = delta
        self._sym_id: Dict[str, int] = {
            symbol: index for index, symbol in enumerate(self.symbols)
        }
        self._pred: Optional[Tuple[Tuple[int, ...], ...]] = None
        self._img_tables: Dict[int, List[List[int]]] = {}
        self._pre_tables: Dict[int, List[List[int]]] = {}
        self._img_singles: Optional[List[List[int]]] = None

    # -- pickling (the persistent artifact store) -------------------------

    def __getstate__(self):
        return (self.alphabet, self.initial, self.n, self.accepting, self.delta)

    def __setstate__(self, state):
        self.__init__(*state)

    def __eq__(self, other) -> bool:
        if not isinstance(other, BitDFA):
            return NotImplemented
        return (
            self.alphabet.symbols == other.alphabet.symbols
            and self.initial == other.initial
            and self.n == other.n
            and self.accepting == other.accepting
            and self.delta == other.delta
        )

    def __hash__(self) -> int:
        return hash((self.alphabet.symbols, self.initial, self.n,
                     self.accepting, self.delta))

    # -- running ----------------------------------------------------------

    def sym(self, symbol: str) -> int:
        """The dense id of a concrete symbol (folded into the alphabet)."""
        index = self._sym_id.get(symbol)
        if index is None:
            index = self._sym_id[self.alphabet.canon(symbol)]
        return index

    def step(self, state: int, symbol: str) -> int:
        """One move (total: the automaton is complete)."""
        return self.delta[self.sym(symbol)][state]

    def accepts(self, word) -> bool:
        state = self.initial
        for symbol in word:
            state = self.delta[self.sym(symbol)][state]
        return bool((self.accepting >> state) & 1)

    # -- mask arithmetic ---------------------------------------------------

    @property
    def full_mask(self) -> int:
        return (1 << self.n) - 1

    def pred(self) -> Tuple[Tuple[int, ...], ...]:
        """Per-symbol predecessor masks: ``pred[a][q']`` = sources of ``q'``."""
        if self._pred is None:
            pred: List[List[int]] = [[0] * self.n for _ in self.symbols]
            for a, row in enumerate(self.delta):
                pred_a = pred[a]
                for q, target in enumerate(row):
                    pred_a[target] |= 1 << q
            self._pred = tuple(tuple(row) for row in pred)
        return self._pred

    @staticmethod
    def _chunk_tables(singles: List[int]) -> List[List[int]]:
        """Byte-indexed lookup tables for OR-folding per-state masks.

        ``tables[c][b]`` is the union of ``singles[8c + i]`` over the set
        bits ``i`` of the byte ``b`` — so folding an ``n``-bit mask costs
        ``n/8`` list lookups instead of a Python loop per set bit.  Each
        chunk's 256 entries are filled in one pass via ``entry[b] =
        entry[b without its lowest bit] | singles[that bit]``.
        """
        tables: List[List[int]] = []
        for base in range(0, len(singles), 8):
            width = min(8, len(singles) - base)
            entries = [0] * 256
            for value in range(1, 1 << width):
                low = value & -value
                entries[value] = (
                    entries[value ^ low]
                    | singles[base + low.bit_length() - 1]
                )
            tables.append(entries)
        return tables

    @staticmethod
    def _fold(tables: List[List[int]], mask: int) -> int:
        result = 0
        chunk = 0
        while mask:
            byte = mask & 0xFF
            if byte:
                result |= tables[chunk][byte]
            mask >>= 8
            chunk += 1
        return result

    def preimage(self, a: int, mask: int) -> int:
        """States whose ``a``-successor lies in ``mask``."""
        tables = self._pre_tables.get(a)
        if tables is None:
            tables = self._chunk_tables(list(self.pred()[a]))
            self._pre_tables[a] = tables
        return self._fold(tables, mask)

    def image(self, a: int, mask: int) -> int:
        """The ``a``-successors of every state in ``mask``."""
        tables = self._img_tables.get(a)
        if tables is None:
            row = self.delta[a]
            tables = self._chunk_tables([1 << row[q] for q in range(self.n)])
            self._img_tables[a] = tables
        return self._fold(tables, mask)

    def image_singles(self) -> List[List[int]]:
        """Per-symbol single-state image bits: ``singles[a][q] = 1 << δ(q,a)``.

        The sparse companion to :meth:`image_tables` — when a frontier
        mask carries only a couple of bits, folding it bit by bit through
        this table beats scanning the chunk tables past their zero bytes.
        """
        if self._img_singles is None:
            self._img_singles = [
                [1 << target for target in row] for row in self.delta
            ]
            record_work(obs.metrics(), "tables",
                        {"image_singles": 1}, core="bitset")
        return self._img_singles

    def preimage_tables(self) -> List[List[List[int]]]:
        """All per-symbol preimage chunk tables, indexed by symbol id."""
        pred = self.pred()
        built = 0
        for a in range(len(self.symbols)):
            if a not in self._pre_tables:
                self._pre_tables[a] = self._chunk_tables(list(pred[a]))
                built += 1
        if built:
            record_work(obs.metrics(), "tables",
                        {"preimage_tables": built}, core="bitset")
        return [self._pre_tables[a] for a in range(len(self.symbols))]

    def image_tables(self) -> List[List[List[int]]]:
        """All per-symbol image chunk tables, indexed by symbol id.

        For callers whose inner loop folds masks edge by edge (the game
        reachability passes) and wants the lookup inline, without a
        method call per edge.
        """
        built = 0
        for a in range(len(self.symbols)):
            if a not in self._img_tables:
                row = self.delta[a]
                self._img_tables[a] = self._chunk_tables(
                    [1 << row[q] for q in range(self.n)]
                )
                built += 1
        if built:
            record_work(obs.metrics(), "tables",
                        {"image_tables": built}, core="bitset")
        return [self._img_tables[a] for a in range(len(self.symbols))]

    def reachable_mask(self) -> int:
        """States reachable from the initial state."""
        reach = 1 << self.initial
        frontier = reach
        while frontier:
            new = 0
            for row in self.delta:
                for q in iter_bits(frontier):
                    new |= 1 << row[q]
            frontier = new & ~reach
            reach |= new
        return reach

    def sink_mask(self) -> int:
        """States whose every transition loops back onto themselves."""
        mask = 0
        for q in range(self.n):
            if all(row[q] == q for row in self.delta):
                mask |= 1 << q
        return mask

    # -- views -------------------------------------------------------------

    def to_dfa(self) -> DFA:
        """The dict-of-dicts view (state numbering preserved exactly)."""
        transitions: Dict[int, Dict[str, int]] = {
            q: {
                self.symbols[a]: self.delta[a][q]
                for a in range(len(self.symbols))
            }
            for q in range(self.n)
        }
        return DFA(
            self.alphabet,
            self.initial,
            frozenset(iter_bits(self.accepting)),
            transitions,
        )


def from_dfa(dfa: DFA) -> BitDFA:
    """Re-encode a dict DFA (completed first, dense ids in sorted order)."""
    completed = complete(dfa)
    states = sorted(completed.states())
    ids = {state: index for index, state in enumerate(states)}
    symbols = tuple(completed.alphabet)
    delta = tuple(
        tuple(ids[completed.transitions[state][symbol]] for state in states)
        for symbol in symbols
    )
    accepting = 0
    for state in completed.accepting:
        accepting |= 1 << ids[state]
    return BitDFA(
        completed.alphabet, ids[completed.initial], len(states), accepting, delta
    )


def bit_determinize(nfa: NFA, alphabet: Alphabet) -> BitDFA:
    """Subset construction straight onto flat tables, then complete.

    Subsets are numbered in BFS discovery order over the sorted alphabet
    — exactly like :func:`repro.automata.dfa.determinize` — with the
    rejecting sink (when one is needed) appended last, matching what
    ``complete()`` does to the dict DFA's numbering.
    """
    symbols = tuple(alphabet)
    sym_id = {symbol: index for index, symbol in enumerate(symbols)}
    start = nfa.epsilon_closure((nfa.initial,))
    ids: Dict[frozenset, int] = {start: 0}
    worklist: deque = deque((start,))
    rows: List[Dict[int, int]] = []
    accepting = 1 if (start & nfa.accepting) else 0

    while worklist:
        subset = worklist.popleft()
        row: Dict[int, int] = {}
        rows.append(row)
        per_symbol: Dict[str, set] = {}
        for state in subset:
            for guard, target in nfa.edges_from(state):
                for symbol in concretize_class(guard, alphabet):
                    per_symbol.setdefault(symbol, set()).add(target)
        for symbol in sorted(per_symbol):
            closure = nfa.epsilon_closure(per_symbol[symbol])
            if closure not in ids:
                ids[closure] = len(ids)
                worklist.append(closure)
                if closure & nfa.accepting:
                    accepting |= 1 << ids[closure]
            row[sym_id[symbol]] = ids[closure]

    n = len(rows)
    width = len(symbols)
    needs_sink = any(len(row) < width for row in rows)
    if needs_sink:
        sink = n
        n += 1
        rows.append({a: sink for a in range(width)})
    else:
        sink = -1  # unused
    delta = tuple(
        tuple(rows[q].get(a, sink) for q in range(n)) for a in range(width)
    )
    return BitDFA(alphabet, 0, n, accepting, delta)


def bit_minimize(bd: BitDFA) -> BitDFA:
    """Hopcroft's minimization with splitter sets as bitmasks.

    The partition-refinement loop mirrors
    :func:`repro.automata.dfa.minimize_hopcroft` (including the queued
    worklist-entry bookkeeping rule); the final blocks are renumbered by
    BFS over the sorted alphabet, so the result is the *same* canonical
    automaton the dict pipeline produces.
    """
    width = len(bd.symbols)
    reach = bd.reachable_mask()
    pred = bd.pred()

    acc = bd.accepting & reach
    rej = reach & ~acc
    partition: List[int] = [block for block in (acc, rej) if block]
    block_of: Dict[int, int] = {}
    for index, block in enumerate(partition):
        for q in iter_bits(block):
            block_of[q] = index

    worklist: deque = deque()
    queued = set()

    def push(a: int, index: int) -> None:
        if (a, index) not in queued:
            queued.add((a, index))
            worklist.append((a, index))

    if len(partition) == 2:
        smaller = min(range(2), key=lambda i: partition[i].bit_count())
        for a in range(width):
            push(a, smaller)
    else:
        for a in range(width):
            push(a, 0)

    while worklist:
        a, splitter_index = worklist.popleft()
        queued.discard((a, splitter_index))
        splitter = partition[splitter_index]
        pred_a = pred[a]
        movers = 0
        for target in iter_bits(splitter):
            movers |= pred_a[target]
        movers &= reach
        if not movers:
            continue
        touched: Dict[int, int] = {}
        for q in iter_bits(movers):
            index = block_of[q]
            touched[index] = touched.get(index, 0) | (1 << q)
        for index, inside in touched.items():
            block = partition[index]
            if inside == block:
                continue  # not split
            outside = block & ~inside
            partition[index] = inside
            new_index = len(partition)
            partition.append(outside)
            for q in iter_bits(outside):
                block_of[q] = new_index
            smaller_index = (
                index if inside.bit_count() <= outside.bit_count() else new_index
            )
            for sym in range(width):
                if (sym, index) in queued:
                    # The queued entry now denotes ``inside``; the other
                    # half must be processed too (Hopcroft's rule).
                    push(sym, new_index)
                else:
                    push(sym, smaller_index)

    # Block-level transitions via one representative state per block.
    n_blocks = len(partition)
    block_delta: List[List[int]] = [[0] * n_blocks for _ in range(width)]
    block_accepting = 0
    for index, block in enumerate(partition):
        rep = (block & -block).bit_length() - 1
        for a in range(width):
            block_delta[a][index] = block_of[bd.delta[a][rep]]
        if (bd.accepting >> rep) & 1:
            block_accepting |= 1 << index

    # Canonical numbering: BFS from the initial block over sorted symbols.
    order: Dict[int, int] = {block_of[bd.initial]: 0}
    queue = deque((block_of[bd.initial],))
    while queue:
        block = queue.popleft()
        for a in range(width):
            target = block_delta[a][block]
            if target not in order:
                order[target] = len(order)
                queue.append(target)

    n = len(order)
    delta = tuple(
        tuple(
            order[block_delta[a][block]]
            for block, _new in sorted(order.items(), key=lambda item: item[1])
        )
        for a in range(width)
    )
    accepting = 0
    for block in iter_bits(block_accepting):
        new = order.get(block)
        if new is not None:
            accepting |= 1 << new
    return BitDFA(bd.alphabet, 0, n, accepting, delta)


def bit_complement(bd: BitDFA) -> BitDFA:
    """Flip acceptance (the automaton is already complete)."""
    return BitDFA(
        bd.alphabet, bd.initial, bd.n, bd.full_mask & ~bd.accepting, bd.delta
    )


def _merge(left: BitDFA, right: BitDFA) -> Tuple[BitDFA, BitDFA]:
    """Put two BitDFAs over one merged alphabet (language-preserving)."""
    if left.alphabet.symbols == right.alphabet.symbols:
        return left, right
    from repro.automata.dfa import widen_alphabet

    merged = Alphabet.closure(left.alphabet.symbols, right.alphabet.symbols)
    return (
        from_dfa(widen_alphabet(left.to_dfa(), merged)),
        from_dfa(widen_alphabet(right.to_dfa(), merged)),
    )


def bit_intersects(left: BitDFA, right: BitDFA) -> bool:
    """True iff the languages share a word — pair search, early exit."""
    left, right = _merge(left, right)
    width = len(left.symbols)
    start = (left.initial, right.initial)
    seen = {start}
    stack = [start]
    while stack:
        l, r = stack.pop()
        if (left.accepting >> l) & 1 and (right.accepting >> r) & 1:
            return True
        for a in range(width):
            pair = (left.delta[a][l], right.delta[a][r])
            if pair not in seen:
                seen.add(pair)
                stack.append(pair)
    return False


def bit_subset(left: BitDFA, right: BitDFA) -> bool:
    """``L(left) ⊆ L(right)`` without materializing the complement.

    Walks the reachable pair graph and fails on the first pair that
    accepts on the left but not on the right — equivalent to
    ``not intersects(left, complement(right))`` with early exit and no
    complement construction.
    """
    left, right = _merge(left, right)
    width = len(left.symbols)
    start = (left.initial, right.initial)
    seen = {start}
    stack = [start]
    while stack:
        l, r = stack.pop()
        if (left.accepting >> l) & 1 and not ((right.accepting >> r) & 1):
            return False
        for a in range(width):
            pair = (left.delta[a][l], right.delta[a][r])
            if pair not in seen:
                seen.add(pair)
                stack.append(pair)
    return True


def antichain_language_subset(
    left: BitDFA, right: NFA, alphabet: Alphabet
) -> bool:
    """``L(left) ⊆ L(right)`` by antichain search — no determinization.

    Explores pairs ``(l, S)`` of a left state and a bitmask of right
    states simultaneously reachable on some word; the word is a
    counterexample when ``l`` accepts and ``S`` misses every accepting
    right state.  Since a pair with a *smaller* ``S`` dominates (fewer
    right states to escape from), only ⊆-minimal masks are kept per left
    state — the antichain that bounds the search far below the 2^n
    subset construction in practice.
    """
    symbols = tuple(alphabet)
    sym_id = {symbol: index for index, symbol in enumerate(symbols)}
    width = len(symbols)
    nr = right.n_states

    closure_mask: List[int] = []
    for r in range(nr):
        mask = 0
        for state in right.epsilon_closure((r,)):
            mask |= 1 << state
        closure_mask.append(mask)
    succ: List[List[int]] = [[0] * width for _ in range(nr)]
    for r in range(nr):
        for guard, target in right.edges_from(r):
            tmask = closure_mask[target]
            for symbol in concretize_class(guard, alphabet):
                succ[r][sym_id[symbol]] |= tmask
    acc_right = 0
    for state in right.accepting:
        acc_right |= 1 << state

    start_mask = closure_mask[right.initial]
    frontier: List[Tuple[int, int]] = [(left.initial, start_mask)]
    antichain: Dict[int, List[int]] = {left.initial: [start_mask]}
    pairs = 0
    result = True
    while frontier:
        l, mask = frontier.pop()
        pairs += 1
        if (left.accepting >> l) & 1 and not (mask & acc_right):
            result = False
            break
        for a in range(width):
            l2 = left.delta[a][l]
            mask2 = 0
            for r in iter_bits(mask):
                mask2 |= succ[r][a]
            kept = antichain.setdefault(l2, [])
            # Skip if a dominated (⊆) mask was already explored; drop
            # entries the new mask dominates.
            if any(existing & mask2 == existing for existing in kept):
                continue
            kept[:] = [e for e in kept if e & mask2 != mask2]
            kept.append(mask2)
            frontier.append((l2, mask2))
    metrics = obs.metrics()
    if metrics.enabled:
        record_work(
            metrics, "subset",
            {"antichain_pairs": pairs,
             "antichain_size": sum(len(v) for v in antichain.values())},
            core="bitset",
        )
    return result
