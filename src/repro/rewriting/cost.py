"""Invocation cost models.

Step 23 of Figure 3 ("to minimize the rewriting cost, chose a path with
minimal number/cost of function invocations") and the mixed approach of
Section 5 (invoke the cheap, side-effect-free calls first) both need a
notion of what a call costs.  :class:`CostModel` assigns each function a
price and a side-effect flag; the executors use prices to order options
(keeping a call is free, so the strategy prefers it whenever safe) and
the mixed rewriter uses the flags to pick its eager set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable


@dataclass
class CostModel:
    """Per-function invocation prices and side-effect information."""

    default_cost: float = 1.0
    costs: Dict[str, float] = field(default_factory=dict)
    side_effect_free: FrozenSet[str] = frozenset()

    def cost_of(self, function_name: str) -> float:
        """The price of invoking one call of this function."""
        return self.costs.get(function_name, self.default_cost)

    def is_side_effect_free(self, function_name: str) -> bool:
        """True iff invoking the function has no observable side effects."""
        return function_name in self.side_effect_free

    def is_cheap(self, function_name: str, threshold: float = 0.0) -> bool:
        """True iff the function is free enough to invoke speculatively.

        The mixed approach invokes functions that are side-effect free or
        cost at most ``threshold``; both conditions mirror Section 5's
        "ones with no side effects or low price".
        """
        return (
            self.is_side_effect_free(function_name)
            or self.cost_of(function_name) <= threshold
        )

    def with_cost(self, function_name: str, cost: float) -> "CostModel":
        """A copy with one function's price overridden."""
        new_costs = dict(self.costs)
        new_costs[function_name] = cost
        return CostModel(self.default_cost, new_costs, self.side_effect_free)

    def with_side_effect_free(self, names: Iterable[str]) -> "CostModel":
        """A copy with more functions flagged side-effect free."""
        return CostModel(
            self.default_cost, dict(self.costs),
            self.side_effect_free | frozenset(names),
        )


#: The neutral model: every call costs 1, everything has side effects.
UNIT = CostModel()
