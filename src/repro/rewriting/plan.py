"""Plans, decisions and invocation logs.

A safe rewriting is a *strategy*, not a fixed sequence: decisions taken
after an invocation may depend on what the call actually returned (step
22 of Figure 3 continues the path "with the new rewritten word").  The
executors therefore record what happened in an :class:`InvocationLog`,
and :class:`Decision` previews summarize what the strategy would do on
the original word — marking decisions as ``"depends"`` when different
service outputs could lead to different choices downstream.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

#: What the strategy does with one function occurrence.
KEEP = "keep"
INVOKE = "invoke"
DEPENDS = "depends"


@dataclass(frozen=True)
class Decision:
    """A previewed choice for one function occurrence of the base word."""

    position: int  # index into the base word
    function: str
    action: str  # KEEP | INVOKE | DEPENDS

    def __str__(self) -> str:
        return "%s %s@%d" % (self.action, self.function, self.position)


@dataclass(frozen=True)
class InvocationRecord:
    """One service call performed while executing a rewriting."""

    function: str
    depth: int  # dependency depth (1 = call was in the original word)
    output_symbols: Tuple[str, ...]  # root symbols of the returned forest
    backtracked: bool = False  # possible-rewriting executor gave up on it
    #: Wall time of the call as the executor's clock saw it (the
    #: invoker's pluggable clock when it carries one, so deterministic
    #: under ``SimulatedClock``); None when the executor did not time it.
    elapsed: Optional[float] = None

    def __str__(self) -> str:
        status = " (backtracked)" if self.backtracked else ""
        timing = "" if self.elapsed is None else " in %.3fs" % self.elapsed
        return "%s -> [%s] depth=%d%s%s" % (
            self.function,
            ".".join(self.output_symbols),
            self.depth,
            timing,
            status,
        )


@dataclass
class InvocationLog:
    """Everything the executor invoked, in order.

    ``records`` includes backtracked calls (their side effects happened);
    ``cost`` accumulates per-call costs when a cost model is supplied.
    """

    records: List[InvocationRecord] = field(default_factory=list)
    cost: float = 0.0

    def add(
        self,
        function: str,
        depth: int,
        output_symbols: Tuple[str, ...],
        call_cost: float = 0.0,
        elapsed: Optional[float] = None,
    ) -> None:
        """Record one performed invocation."""
        self.records.append(
            InvocationRecord(function, depth, output_symbols, elapsed=elapsed)
        )
        self.cost += call_cost

    def mark_backtracked(self, index: int) -> None:
        """Flag a recorded call as abandoned by backtracking."""
        record = self.records[index]
        self.records[index] = InvocationRecord(
            record.function, record.depth, record.output_symbols, True,
            record.elapsed,
        )

    @property
    def invoked(self) -> List[str]:
        """Function names actually invoked, in call order."""
        return [record.function for record in self.records]

    @property
    def useful(self) -> List[InvocationRecord]:
        """Calls whose results made it into the final document."""
        return [record for record in self.records if not record.backtracked]

    @property
    def total_elapsed(self) -> float:
        """Summed wall time of the timed calls (untimed ones count 0)."""
        return sum(
            record.elapsed for record in self.records
            if record.elapsed is not None
        )

    def __len__(self) -> int:
        return len(self.records)

    def __str__(self) -> str:
        if not self.records:
            return "no calls"
        return "; ".join(str(record) for record in self.records)


def timed_invoke(invoker, call) -> Tuple[Sequence, float]:
    """Invoke and measure: ``(forest, elapsed)``.

    Uses the invoker's own pluggable clock when it carries one (a
    :class:`repro.services.resilience.ResilientInvoker` does — including
    its ``SimulatedClock``, which keeps timings deterministic in tests),
    falling back to ``time.perf_counter``.
    """
    clock = getattr(invoker, "clock", None)
    now: Callable[[], float] = (
        clock.now if clock is not None else time.perf_counter
    )
    started = now()
    forest = tuple(invoker(call))
    return forest, now() - started
