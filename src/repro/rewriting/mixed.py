"""The mixed approach (Section 5, last paragraph).

"A mixed approach, that invokes some of the functions (e.g. ones with no
side effects or low price) to get their actual output, while safely
verifying other functions can be clearly beneficial.  [...] rather than
using the full function signature automaton ``A_f``, we will use a
smaller one that describes just the type of the actual returned result."

We realize this by *pre-materializing*: the eager calls are invoked up
front and their actual outputs spliced into the children word — the
strongest form of "a smaller automaton for the actual result" (the result
is now literal content).  The safe game then runs on the updated word,
whose expansion no longer contains the eager functions' signature copies;
benchmark E13 measures the resulting product-size reduction.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.doc.nodes import FunctionCall, Node, symbol_of
from repro.regex.ast import Regex
from repro.rewriting.lazy import analyze_safe_lazy
from repro.rewriting.plan import InvocationLog
from repro.rewriting.safe import Invoker, SafeAnalysis, analyze_safe, execute_safe


def pre_materialize(
    children: Sequence[Node],
    eager: Callable[[str], bool],
    invoker: Invoker,
    k: int,
    log: InvocationLog,
    cost_of: Callable[[str], float],
    depth: int = 1,
) -> Tuple[Node, ...]:
    """Invoke every eager call up front, splicing actual outputs in place.

    Eager calls returned *by* eager calls are materialized too, as long
    as the dependency depth stays within ``k`` (Definition 7 still bounds
    the overall rewriting).
    """
    result: List[Node] = []
    for child in children:
        if (
            isinstance(child, FunctionCall)
            and depth <= k
            and eager(child.name)
        ):
            forest = tuple(invoker(child))
            log.add(
                child.name, depth,
                tuple(symbol_of(t) for t in forest), cost_of(child.name),
            )
            result.extend(
                pre_materialize(forest, eager, invoker, k, log, cost_of, depth + 1)
            )
        else:
            result.append(child)
    return tuple(result)


def mixed_rewrite_word(
    children: Sequence[Node],
    output_types: Dict[str, Regex],
    target: Regex,
    invoker: Invoker,
    eager: Callable[[str], bool],
    k: int = 1,
    invocable: Optional[Callable[[str], bool]] = None,
    cost_of: Optional[Callable[[str], float]] = None,
    lazy: bool = True,
) -> Tuple[Tuple[Node, ...], InvocationLog, SafeAnalysis]:
    """Mixed rewriting of one children word.

    1. invoke the eager calls and splice their actual outputs;
    2. solve the safe game on the updated word (the non-eager calls keep
       their full signature automata);
    3. execute the winning strategy with real invocations.

    Returns the rewritten children, the full invocation log (eager calls
    included) and the analysis — whose ``stats`` show the smaller game.

    Raises :class:`~repro.errors.NoSafeRewritingError` when, even knowing
    the eager calls' actual outputs, no safe rewriting exists.
    """
    log = InvocationLog()
    cost_of = cost_of or (lambda _name: 1.0)
    updated = pre_materialize(children, eager, invoker, k, log, cost_of)
    word = tuple(symbol_of(node) for node in updated)
    analyze = analyze_safe_lazy if lazy else analyze_safe
    analysis = analyze(word, output_types, target, k=k, invocable=invocable)
    new_children, log = execute_safe(
        analysis, updated, invoker, log=log, cost_of=cost_of
    )
    return new_children, log, analysis
