"""Cost-optimal safe strategies (Figure 3, step 23).

Step 23 asks for "a path with minimal number/cost of function
invocations".  The executor's default rule — keep a call whenever the
keep successor is unmarked — is locally free but *globally* suboptimal:
keeping a call now can force several invocations later.  The classic
witness (benchmark E15):

    w = f.g.h      tau_out(f)=a, tau_out(g)=b, tau_out(h)=c
    R = (f.b.c) | (a.g.h)

Keeping ``f`` (locally free) commits to the first branch and forces
invoking *both* ``g`` and ``h``; invoking ``f`` costs one call and lets
``g`` and ``h`` stay.  Greedy pays 2, the optimum pays 1.

This module computes the optimal strategy by backward induction on the
marking game: the *value* of a product node is the worst-case (over
adversarial outputs) total invocation cost the best strategy pays from
there, restricted to the unmarked (winning) region.  Values are solved
by value iteration — a least fixpoint, with cycles handled because costs
are non-negative and the winning region admits finite plays.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.doc.nodes import FunctionCall, Node, symbol_of
from repro.errors import NoSafeRewritingError, RewriteExecutionError
from repro.rewriting.plan import INVOKE, KEEP, InvocationLog
from repro.rewriting.safe import (
    Invoker,
    PNode,
    SafeAnalysis,
    alternatives,
)


def strategy_values(
    analysis: SafeAnalysis,
    cost_of: Optional[Callable[[str], float]] = None,
    max_iterations: int = 10_000,
) -> Dict[PNode, float]:
    """Worst-case invocation cost of the optimal strategy per node.

    Only unmarked (winning) nodes get finite values; marked or unexplored
    nodes are ``inf``.  The value of the initial node is the guaranteed
    cost bound of the whole rewriting.
    """
    cost_of = cost_of or (lambda _name: 1.0)
    expansion = analysis.expansion

    # Collect the winning region reachable from the initial node.
    nodes: List[PNode] = []
    alts_of: Dict[PNode, list] = {}
    seen = set()
    stack = [analysis.initial]
    while stack:
        node = stack.pop()
        if node in seen or analysis.is_marked(node):
            continue
        seen.add(node)
        nodes.append(node)
        alts = alternatives(expansion, analysis, node)
        alts_of[node] = alts
        for alt in alts:
            for succ in alt.options:
                if succ not in seen and not analysis.is_marked(succ):
                    stack.append(succ)

    values: Dict[PNode, float] = {node: 0.0 for node in nodes}

    def option_cost(node: PNode, alt, values_now) -> float:
        """min over our options of (option cost + successor value)."""
        if not alt.is_fork:
            succ = alt.options[0]
            return values_now.get(succ, math.inf)
        keep_succ, invoke_succ = alt.options
        edge = analysis.expansion.edge(alt.edge_id)
        keep = values_now.get(keep_succ, math.inf)
        invoke = cost_of(str(edge.guard)) + values_now.get(invoke_succ, math.inf)
        return min(keep, invoke)

    for _ in range(max_iterations):
        changed = False
        for node in nodes:
            alts = alts_of[node]
            if not alts:
                new_value = 0.0  # terminal: the word ended inside R
            else:
                new_value = max(
                    option_cost(node, alt, values) for alt in alts
                )
            if new_value != values[node]:
                values[node] = new_value
                changed = True
        if not changed:
            break
    return values


def optimal_decision(
    analysis: SafeAnalysis,
    values: Dict[PNode, float],
    node: PNode,
    edge,
    cost_of: Callable[[str], float],
) -> str:
    """Pick keep or invoke minimizing the guaranteed remaining cost."""
    keep_succ = (edge.target, analysis.comp_step(node[1], str(edge.guard)))
    invoke_edge = analysis.expansion.edge(edge.invoke_edge)
    invoke_succ = (invoke_edge.target, node[1])
    keep = values.get(keep_succ, math.inf)
    invoke = cost_of(str(edge.guard)) + values.get(invoke_succ, math.inf)
    return KEEP if keep <= invoke else INVOKE


def execute_safe_optimal(
    analysis: SafeAnalysis,
    children: Sequence[Node],
    invoker: Invoker,
    cost_of: Optional[Callable[[str], float]] = None,
    log: Optional[InvocationLog] = None,
) -> Tuple[Tuple[Node, ...], InvocationLog]:
    """Like :func:`repro.rewriting.safe.execute_safe`, but cost-optimal.

    Guarantees the same safety, and additionally that the total cost paid
    never exceeds ``strategy_values(analysis)[initial]`` — the optimal
    worst-case bound — whatever conforming outputs come back.
    """
    if not analysis.exists:
        raise NoSafeRewritingError(
            "no safe %d-depth rewriting of %s"
            % (analysis.k, ".".join(analysis.word) or "eps")
        )
    cost_of = cost_of or (lambda _name: 1.0)
    log = log if log is not None else InvocationLog()
    values = strategy_values(analysis, cost_of)

    out: List[Node] = []
    node = analysis.initial
    for child in children:
        node = _consume(analysis, values, node, child, out, invoker, log,
                        cost_of, depth=1)
    if node[0] != analysis.expansion.final:
        raise RewriteExecutionError("execution stopped before the word's end")
    return tuple(out), log


def _consume(analysis, values, node, child, out, invoker, log, cost_of, depth):
    from repro.automata.symbols import class_matches

    expansion = analysis.expansion
    symbol = symbol_of(child)
    q, p = node
    candidates = [
        edge for edge in expansion.edges_from(q)
        if edge.kind == "symbol" and class_matches(edge.guard, symbol)
    ]
    if not candidates:
        raise RewriteExecutionError(
            "no transition for %r — document does not match the analysis"
            % symbol
        )
    # Prefer candidates whose successors are in the winning region.
    def viable(edge):
        succ = (edge.target, analysis.comp_step(p, symbol))
        in_values = succ in values
        if edge.invoke_edge is not None:
            invoke_edge = expansion.edge(edge.invoke_edge)
            in_values = in_values or (invoke_edge.target, p) in values
        return in_values

    edge = next((e for e in candidates if viable(e)), candidates[0])

    if isinstance(child, FunctionCall) and edge.invoke_edge is not None:
        decision = optimal_decision(analysis, values, node, edge, cost_of)
        if decision == KEEP:
            out.append(child)
            return (edge.target, analysis.comp_step(p, symbol))
        invoke_edge = expansion.edge(edge.invoke_edge)
        copy = expansion.copies[invoke_edge.copy]
        forest = tuple(invoker(child))
        log.add(child.name, depth,
                tuple(symbol_of(t) for t in forest), cost_of(child.name))
        inner = (invoke_edge.target, p)
        for tree in forest:
            inner = _consume(analysis, values, inner, tree, out, invoker,
                             log, cost_of, depth + 1)
        return_edge_id = copy.return_edges.get(inner[0])
        if return_edge_id is None:
            raise RewriteExecutionError(
                "service %r violated its output type" % child.name
            )
        return (expansion.edge(return_edge_id).target, inner[1])

    out.append(child)
    return (edge.target, analysis.comp_step(p, symbol))
