"""The optimized lazy variant of safe rewriting (Section 7, Figure 12).

The eager algorithm of Figure 3 "starts by constructing all the required
automata and only then analyzes the resulting graph.  By contrast, our
implementation builds the automaton in a lazy mode, starting from the
initial state, and constructing only the needed parts."  Two prunings
drive it:

- **Sink nodes**: some accepting states of ``Ā`` are sinks — once
  reached, the produced word can never fall back into the target
  language.  Any product node sitting on such a state is marked at once
  and its outgoing branches are never built (the left shaded area of
  Figure 12).
- **Marked nodes**: once a node is known marked there is no point
  exploring its successors any further (the right shaded area).

The variant has the same worst-case complexity but explores strictly
fewer product nodes in practice — benchmark E7 counts them.  Answers are
identical to the eager algorithm: marking is a least fixpoint and both
prunings only skip regions that cannot change it.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.compile import context as compile_context
from repro.obs import context as obs
from repro.obs.metrics import record_work
from repro.regex.ast import Regex
from repro.rewriting.expansion import build_expansion
from repro.rewriting.safe import (
    Alternative,
    GameStats,
    PNode,
    SafeAnalysis,
    alternatives,
    problem_alphabet,
)


def analyze_safe_lazy(
    word: Sequence[str],
    output_types: Dict[str, Regex],
    target: Regex,
    k: int = 1,
    invocable: Optional[Callable[[str], bool]] = None,
    early_exit: bool = True,
    compile_cache=None,
) -> SafeAnalysis:
    """Solve the safe-rewriting game with on-demand construction.

    Same signature and same answers as
    :func:`repro.rewriting.safe.analyze_safe`; ``stats.product_explored``
    records how many product nodes were actually expanded, which is the
    quantity Figure 12's pruning reduces.  With ``early_exit`` the search
    stops as soon as the initial state is marked (the answer is already
    "unsafe").

    With ``REPRO_AUTOMATA_CORE=bitset`` the same prunings run as mask
    arithmetic in :mod:`repro.rewriting.bitgame` (sink absorption plus
    sink-seeded marking) — identical answers and strategy.
    """
    from repro.automata import core as automata_core

    if automata_core.use_bitset():
        from repro.rewriting.bitgame import analyze_safe_bitset

        return analyze_safe_bitset(
            word, output_types, target, k=k, invocable=invocable,
            lazy=True, early_exit=early_exit, compile_cache=compile_cache,
        )
    tracer = obs.tracer()
    cc = compile_cache if compile_cache is not None else compile_context.cache()
    with tracer.span("product", algorithm="safe-lazy", k=k) as span:
        alphabet = problem_alphabet(word, output_types, target)
        expansion = build_expansion(
            word, output_types, k, invocable, compile_cache=cc
        )
        comp = cc.complement(target, alphabet)
        span.set(
            expansion_states=expansion.n_states,
            complement_states=comp.n_states,
        )

    analysis = SafeAnalysis(
        word=tuple(word),
        k=k,
        target=target,
        expansion=expansion,
        comp=comp,
        alphabet=alphabet,
        marked=set(),
        explored=set(),
        exists=False,
        stats=GameStats(
            expansion_states=expansion.n_states,
            expansion_edges=len(expansion.edges),
            complement_states=comp.n_states,
        ),
    )

    accepting_sinks = comp.sink_states() & comp.accepting
    marked = analysis.marked
    reverse: Dict[PNode, List[Tuple[PNode, int]]] = {}
    remaining: Dict[Tuple[PNode, int], int] = {}
    expanded: Set[PNode] = set()

    work = {"frontier_pops": 0, "propagate_pops": 0}

    def propagate(seed: PNode) -> None:
        """Backward propagation of a newly marked node."""
        queue = [seed]
        while queue:
            bad = queue.pop()
            work["propagate_pops"] += 1
            for node, index in reverse.get(bad, ()):
                if node in marked:
                    continue
                remaining[(node, index)] -= 1
                if remaining[(node, index)] == 0:
                    marked.add(node)
                    queue.append(node)

    initial = analysis.initial
    frontier = deque([initial])
    analysis.explored.add(initial)
    game_span = tracer.start("game", algorithm="safe-lazy")
    while frontier:
        if early_exit and initial in marked:
            break
        node = frontier.popleft()
        work["frontier_pops"] += 1
        if node in marked or node in expanded:
            continue  # marked-node pruning: successors are irrelevant
        q, p = node

        if p in accepting_sinks:
            # Sink-node pruning: the complement can never be escaped, and
            # every play ends at the word's final state, which is then
            # accepting — the adversary has already won here.
            marked.add(node)
            propagate(node)
            continue
        if q == expansion.final and p in comp.accepting:
            marked.add(node)
            propagate(node)
            continue

        expanded.add(node)
        alts = alternatives(expansion, analysis, node)
        became_bad = False
        for index, alt in enumerate(alts):
            options = set(alt.options)
            live = {succ for succ in options if succ not in marked}
            remaining[(node, index)] = len(live)
            for succ in options:
                reverse.setdefault(succ, []).append((node, index))
                if succ not in analysis.explored:
                    analysis.explored.add(succ)
                    frontier.append(succ)
            if not live:
                became_bad = True
        if became_bad and node not in marked:
            marked.add(node)
            propagate(node)

    analysis.exists = initial not in marked
    analysis.stats.product_nodes = len(analysis.explored)
    analysis.stats.product_explored = len(expanded)
    analysis.stats.marked_nodes = len(marked)
    game_span.set(
        product_nodes=len(analysis.explored),
        explored=len(expanded),
        marked=len(marked),
        exists=analysis.exists,
        **work,
    )
    tracer.finish(game_span)
    work["product_nodes"] = len(analysis.explored)
    work["expanded_nodes"] = len(expanded)
    work["marked_nodes"] = len(marked)
    record_work(obs.metrics(), "game", work,
                core="dict", algorithm="safe-lazy")
    return analysis
