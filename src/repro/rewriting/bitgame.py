"""Vectorized marking game and reachability on the bitset core.

The per-node solvers of :mod:`repro.rewriting.safe` / ``lazy`` /
``possible`` walk the product ``A_w^k × Ā`` one ``(q, p)`` pair at a
time.  Here the complement side is a :class:`repro.automata.bitset.BitDFA`
and the product is never materialized as nodes at all: for each
expansion state ``q`` we keep one integer mask over complement states,
and the whole marking fixpoint becomes mask arithmetic —

- a *return* edge ``q -> t`` (adversary ends an output) contributes
  ``M[t]`` to ``M[q]`` unchanged (epsilon: the complement stays put);
- a *fork* edge (our keep/invoke choice on symbol ``f``) contributes
  ``pre_f(M[keep]) & M[invoke]`` — the adversary wins only where *both*
  options lose;
- a plain symbol edge with guard ``g`` contributes
  ``∪_{a ∈ g} pre_a(M[t])`` — the adversary picks the letter.

Seeds are ``accepting(Ā)`` at the expansion's final state; the lazy
variant additionally seeds every accepting *sink* of ``Ā`` (Figure 12's
pruning) and absorbs forward exploration there.  The fixpoint is the
same least fixpoint the per-node solvers compute, so verdicts,
strategies and rewritten documents are identical — the conformance
fuzzer's ``bitset-core`` configuration checks this byte-for-byte.

The solved analyses are returned as the ordinary
:class:`~repro.rewriting.safe.SafeAnalysis` /
:class:`~repro.rewriting.possible.PossibleAnalysis` objects: ``marked``
/ ``explored`` / ``alive`` become :class:`PNodeBitSet` views (set-like,
lazily enumerated), and the complement / target automata are dict-DFA
views of the bitset artifacts — numbering-identical by the canonical
BFS construction, so every executor and renderer works unchanged.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.automata.bitset import BitDFA, iter_bits
from repro.automata.symbols import Alphabet, concretize_class
from repro.compile import context as compile_context
from repro.obs import context as obs
from repro.obs.metrics import record_work
from repro.regex.ast import Regex
from repro.rewriting.expansion import Expansion, build_expansion

#: A product node, as elsewhere: (expansion state, automaton state).
PNode = Tuple[int, int]


class PNodeBitSet:
    """A set-of-``(q, p)`` view over per-``q`` bitmasks.

    Duck-types the ``Set[PNode]`` the analyses carry: membership, length
    and iteration — enough for the executors, the strategy helpers, the
    dot renderer and the tests, without ever materializing tuples unless
    someone iterates.
    """

    __slots__ = ("_masks", "_count")

    def __init__(self, masks: Dict[int, int]):
        self._masks = {q: mask for q, mask in masks.items() if mask}
        self._count: Optional[int] = None

    def __contains__(self, node) -> bool:
        q, p = node
        return bool((self._masks.get(q, 0) >> p) & 1)

    def __len__(self) -> int:
        if self._count is None:
            self._count = sum(mask.bit_count() for mask in self._masks.values())
        return self._count

    def __iter__(self) -> Iterator[PNode]:
        for q in sorted(self._masks):
            for p in iter_bits(self._masks[q]):
                yield (q, p)

    def __bool__(self) -> bool:
        return bool(self._masks)

    def mask(self, q: int) -> int:
        """The raw complement-state mask at expansion state ``q``."""
        return self._masks.get(q, 0)


class _ExpansionView:
    """An expansion's edges re-indexed for mask arithmetic.

    Built once per (expansion, alphabet) and cached on the expansion
    object — expansions are immutable and shared via the compile cache,
    so the view is shared exactly as widely.
    """

    __slots__ = ("n_states", "plain_out", "fork_out", "ret_out", "eps_out",
                 "sym_out", "eps_in", "sym_in", "reads")

    def __init__(self, expansion: Expansion, alphabet: Alphabet):
        symbols = tuple(alphabet)
        sym_id = {symbol: index for index, symbol in enumerate(symbols)}
        n = expansion.n_states
        self.n_states = n
        # Game-alternative indexing (invoke edges ride along their fork).
        self.plain_out: List[List[Tuple[int, Tuple[int, ...]]]] = [
            [] for _ in range(n)
        ]
        self.fork_out: List[List[Tuple[int, int, int]]] = [[] for _ in range(n)]
        self.ret_out: List[List[int]] = [[] for _ in range(n)]
        # Plain-graph indexing for possible-rewriting reachability,
        # plus the reverse adjacency its backward pass propagates along.
        self.eps_out: List[List[int]] = [[] for _ in range(n)]
        self.sym_out: List[List[Tuple[int, Tuple[int, ...]]]] = [
            [] for _ in range(n)
        ]
        self.eps_in: List[List[int]] = [[] for _ in range(n)]
        self.sym_in: List[List[Tuple[int, Tuple[int, ...]]]] = [
            [] for _ in range(n)
        ]
        for edge in expansion.edges:
            if edge.kind == "invoke":
                self.eps_out[edge.source].append(edge.target)
                continue
            if edge.kind == "return":
                self.ret_out[edge.source].append(edge.target)
                self.eps_out[edge.source].append(edge.target)
                continue
            ids = tuple(
                sym_id[symbol]
                for symbol in sorted(concretize_class(edge.guard, alphabet))
            )
            self.sym_out[edge.source].append((edge.target, ids))
            if edge.invoke_edge is not None:
                invoke = expansion.edge(edge.invoke_edge)
                # Fork guards are function names — always in the alphabet.
                self.fork_out[edge.source].append(
                    (edge.target, ids[0], invoke.target)
                )
            else:
                self.plain_out[edge.source].append((edge.target, ids))
        # Backward-fixpoint dependencies: reads[t] = sources reading M[t].
        self.reads: List[List[int]] = [[] for _ in range(n)]
        for q in range(n):
            for target, ids in self.sym_out[q]:
                self.sym_in[target].append((q, ids))
            for target in self.eps_out[q]:
                self.eps_in[target].append(q)
            for target, _ids in self.plain_out[q]:
                self.reads[target].append(q)
            for keep_target, _a, invoke_target in self.fork_out[q]:
                self.reads[keep_target].append(q)
                self.reads[invoke_target].append(q)
            for target in self.ret_out[q]:
                self.reads[target].append(q)


def expansion_view(expansion: Expansion, alphabet: Alphabet) -> _ExpansionView:
    """The cached mask-arithmetic view of an expansion."""
    cache = expansion.__dict__.setdefault("_bit_views", {})
    view = cache.get(alphabet.symbols)
    if view is None:
        view = _ExpansionView(expansion, alphabet)
        cache[alphabet.symbols] = view
    return view


def _solve_marking(
    view: _ExpansionView, comp: BitDFA, final: int, lazy: bool,
    work: Optional[Dict[str, int]] = None,
) -> List[int]:
    """The least-fixpoint marking, one mask per expansion state.

    ``work`` (when given) accumulates deterministic counters:
    ``mark_pops`` (worklist pops) and ``mark_updates`` (masks grown).
    """
    n = view.n_states
    base = [0] * n
    base[final] = comp.accepting
    if lazy:
        sinks = comp.sink_mask() & comp.accepting
        if sinks:
            for q in range(n):
                base[q] |= sinks
    marked = list(base)
    plain_out, fork_out, ret_out = view.plain_out, view.fork_out, view.ret_out
    pre_tables = comp.preimage_tables()
    pops = updates = 0

    # Contributions read successor masks and expansion ids mostly ascend,
    # so seeding the worklist in reverse order settles the deep states
    # first and the fixpoint converges in near-one pass.
    queue = deque(range(n - 1, -1, -1))
    queued = bytearray(b"\x01") * n
    push = queue.append
    while queue:
        q = queue.popleft()
        queued[q] = 0
        pops += 1
        mask = base[q]
        for target, ids in plain_out[q]:
            bad = marked[target]
            if bad:
                for a in ids:
                    chunks = pre_tables[a]
                    rest = bad
                    chunk = 0
                    while rest:
                        byte = rest & 0xFF
                        if byte:
                            mask |= chunks[chunk][byte]
                        rest >>= 8
                        chunk += 1
        for keep_target, a, invoke_target in fork_out[q]:
            keep_bad = marked[keep_target]
            invoke_bad = marked[invoke_target]
            if keep_bad and invoke_bad:
                folded = 0
                chunks = pre_tables[a]
                rest = keep_bad
                chunk = 0
                while rest:
                    byte = rest & 0xFF
                    if byte:
                        folded |= chunks[chunk][byte]
                    rest >>= 8
                    chunk += 1
                mask |= folded & invoke_bad
        for target in ret_out[q]:
            mask |= marked[target]
        if mask != marked[q]:
            marked[q] = mask
            updates += 1
            for source in view.reads[q]:
                if not queued[source]:
                    queued[source] = 1
                    push(source)
    if work is not None:
        work["mark_pops"] = work.get("mark_pops", 0) + pops
        work["mark_updates"] = work.get("mark_updates", 0) + updates
    return marked


def _reach_game(
    view: _ExpansionView, comp: BitDFA, initial: PNode, final: int,
    absorb: int, work: Optional[Dict[str, int]] = None,
) -> List[int]:
    """Forward reachability along game alternatives, masks per state.

    ``absorb`` is a complement-state mask whose nodes are discovered but
    never expanded (the lazy variant's accepting sinks; 0 = expand all).
    ``work`` (when given) accumulates ``reach_pops`` (worklist pops) and
    ``frontier_bits`` (total fresh bits expanded).
    """
    n = view.n_states
    reach = [0] * n
    q0, p0 = initial
    reach[q0] = 1 << p0
    plain_out, fork_out, ret_out = view.plain_out, view.fork_out, view.ret_out
    singles = comp.image_singles()
    pops = frontier_bits = 0

    # FIFO worklist with bytearray dirty flags and ``done`` masks:
    # every (state, bit) pair is expanded exactly once, with the image
    # folded inline bit by bit — the product walk is nearly sequential
    # (frontier masks carry only a couple of fresh bits), so per-edge
    # overhead, not mask width, is what this loop is bound by.
    done = [0] * n
    dirty = bytearray(n)
    dirty[q0] = 1
    queue = deque((q0,))
    push = queue.append
    while queue:
        q = queue.popleft()
        dirty[q] = 0
        pops += 1
        if q == final:
            continue  # the final state has no outgoing alternatives
        fresh = (reach[q] & ~absorb) & ~done[q]
        if not fresh:
            continue
        done[q] |= fresh
        frontier_bits += fresh.bit_count()
        for target, ids in plain_out[q]:
            mask = 0
            for a in ids:
                bits = singles[a]
                rest = fresh
                while rest:
                    low = rest & -rest
                    mask |= bits[low.bit_length() - 1]
                    rest ^= low
            if mask & ~reach[target]:
                reach[target] |= mask
                if not dirty[target]:
                    dirty[target] = 1
                    push(target)
        for keep_target, a, invoke_target in fork_out[q]:
            mask = 0
            bits = singles[a]
            rest = fresh
            while rest:
                low = rest & -rest
                mask |= bits[low.bit_length() - 1]
                rest ^= low
            if mask & ~reach[keep_target]:
                reach[keep_target] |= mask
                if not dirty[keep_target]:
                    dirty[keep_target] = 1
                    push(keep_target)
            if fresh & ~reach[invoke_target]:
                reach[invoke_target] |= fresh
                if not dirty[invoke_target]:
                    dirty[invoke_target] = 1
                    push(invoke_target)
        for target in ret_out[q]:
            if fresh & ~reach[target]:
                reach[target] |= fresh
                if not dirty[target]:
                    dirty[target] = 1
                    push(target)
    if work is not None:
        work["reach_pops"] = work.get("reach_pops", 0) + pops
        work["frontier_bits"] = work.get("frontier_bits", 0) + frontier_bits
    return reach


def analyze_safe_bitset(
    word: Sequence[str],
    output_types: Dict[str, Regex],
    target: Regex,
    k: int = 1,
    invocable: Optional[Callable[[str], bool]] = None,
    lazy: bool = False,
    early_exit: bool = True,
    compile_cache=None,
):
    """Solve the safe-rewriting game on the bitset core.

    Drop-in for :func:`repro.rewriting.safe.analyze_safe` (``lazy=False``)
    and :func:`repro.rewriting.lazy.analyze_safe_lazy` (``lazy=True``) —
    same answers, same strategy, same stats inequalities (the lazy pass
    explores no more than the eager one; sink pruning shrinks it
    strictly whenever a sink is reachable).  ``early_exit`` is accepted
    for signature compatibility; the vectorized pass always runs to the
    fixpoint, whose cost the early exit was approximating.
    """
    from repro.rewriting.safe import GameStats, SafeAnalysis, problem_alphabet

    del early_exit  # the fixpoint is the cheap path here
    tracer = obs.tracer()
    cc = compile_cache if compile_cache is not None else compile_context.cache()
    algorithm = "safe-lazy" if lazy else "safe-eager"
    with tracer.span(
        "product", algorithm=algorithm, k=k, core="bitset"
    ) as span:
        alphabet = problem_alphabet(word, output_types, target)
        expansion = build_expansion(
            word, output_types, k, invocable, compile_cache=cc
        )
        comp = cc.bit_complement(target, alphabet)
        comp_view = cc.complement_view(target, alphabet)
        view = expansion_view(expansion, alphabet)
        span.set(
            expansion_states=expansion.n_states,
            complement_states=comp.n,
        )

    with tracer.span("game", algorithm=algorithm, core="bitset") as span:
        work: Dict[str, int] = {}
        marked = _solve_marking(view, comp, expansion.final, lazy, work)
        absorb = (comp.sink_mask() & comp.accepting) if lazy else 0
        reach = _reach_game(
            view, comp, (expansion.initial, comp.initial), expansion.final,
            absorb, work,
        )
        q0, p0 = expansion.initial, comp.initial
        exists = not ((marked[q0] >> p0) & 1)

        explored = sum(mask.bit_count() for mask in reach)
        if lazy:
            # Discovered-but-not-expanded: absorbed sink nodes, plus the
            # final state's seed nodes (marked on sight, never expanded).
            skipped = sum((mask & absorb).bit_count() for mask in reach)
            skipped += (
                reach[expansion.final] & comp.accepting & ~absorb
            ).bit_count()
            expanded = explored - skipped
        else:
            expanded = explored
        marked_reached = [m & r for m, r in zip(marked, reach)]
        marked_count = sum(mask.bit_count() for mask in marked_reached)
        span.set(
            product_nodes=explored, explored=expanded,
            marked=marked_count, exists=exists, **work,
        )
        work["product_nodes"] = explored
        work["marked_nodes"] = marked_count
        record_work(obs.metrics(), "game", work,
                    core="bitset", algorithm=algorithm)

    return SafeAnalysis(
        word=tuple(word),
        k=k,
        target=target,
        expansion=expansion,
        comp=comp_view,
        alphabet=alphabet,
        marked=PNodeBitSet(dict(enumerate(marked_reached))),
        explored=PNodeBitSet(dict(enumerate(reach))),
        exists=exists,
        stats=GameStats(
            expansion_states=expansion.n_states,
            expansion_edges=len(expansion.edges),
            complement_states=comp.n,
            product_nodes=explored,
            product_explored=expanded,
            marked_nodes=marked_count,
        ),
    )


def analyze_possible_bitset(
    word: Sequence[str],
    output_types: Dict[str, Regex],
    target: Regex,
    k: int = 1,
    invocable: Optional[Callable[[str], bool]] = None,
    compile_cache=None,
):
    """Possible rewriting (Figure 9) on the bitset core.

    Forward reachability then backward co-reachability, both as mask
    fixpoints over ``A_w^k × A``.  Drop-in for
    :func:`repro.rewriting.possible.analyze_possible`.
    """
    from repro.rewriting.possible import PossibleAnalysis
    from repro.rewriting.safe import GameStats, problem_alphabet

    tracer = obs.tracer()
    cc = compile_cache if compile_cache is not None else compile_context.cache()
    with tracer.span("product", algorithm="possible", k=k, core="bitset") as span:
        alphabet = problem_alphabet(word, output_types, target)
        expansion = build_expansion(
            word, output_types, k, invocable, compile_cache=cc
        )
        target_bit = cc.bit_target_dfa(target, alphabet)
        target_view = cc.target_dfa_view(target, alphabet)
        view = expansion_view(expansion, alphabet)
        span.set(
            expansion_states=expansion.n_states,
            target_states=target_bit.n,
        )

    n = view.n_states
    sym_out, eps_out = view.sym_out, view.eps_out

    with tracer.span("game", algorithm="possible", core="bitset") as span:
        work: Dict[str, int] = {"reach_pops": 0, "frontier_bits": 0,
                                "back_pops": 0, "back_bits": 0}
        # Forward reachability (every fork option is a plain edge here) —
        # the same inline bit-by-bit fold worklist as :func:`_reach_game`.
        singles = target_bit.image_singles()
        reach = [0] * n
        q0, p0 = expansion.initial, target_bit.initial
        reach[q0] = 1 << p0
        done = [0] * n
        dirty = bytearray(n)
        dirty[q0] = 1
        queue = deque((q0,))
        push = queue.append
        while queue:
            q = queue.popleft()
            dirty[q] = 0
            work["reach_pops"] += 1
            fresh = reach[q] & ~done[q]
            if not fresh:
                continue
            done[q] |= fresh
            work["frontier_bits"] += fresh.bit_count()
            for target_state, ids in sym_out[q]:
                mask = 0
                for a in ids:
                    bits = singles[a]
                    rest = fresh
                    while rest:
                        low = rest & -rest
                        mask |= bits[low.bit_length() - 1]
                        rest ^= low
                if mask & ~reach[target_state]:
                    reach[target_state] |= mask
                    if not dirty[target_state]:
                        dirty[target_state] = 1
                        push(target_state)
            for target_state in eps_out[q]:
                if fresh & ~reach[target_state]:
                    reach[target_state] |= fresh
                    if not dirty[target_state]:
                        dirty[target_state] = 1
                        push(target_state)

        # Backward co-reachability from the accepting nodes (step 5) —
        # delta propagation along the reverse adjacency: a node's alive
        # bits flow to its predecessors exactly once (preimage is a
        # union-fold, so propagating only the growth is sound).
        pred = target_bit.pred()
        sym_in, eps_in = view.sym_in, view.eps_in
        alive = [0] * n
        pending = [0] * n
        seed = reach[expansion.final] & target_bit.accepting
        alive[expansion.final] = pending[expansion.final] = seed
        queue = deque((expansion.final,) if seed else ())
        push = queue.append
        dirty = bytearray(n)
        dirty[expansion.final] = 1
        while queue:
            t = queue.popleft()
            dirty[t] = 0
            work["back_pops"] += 1
            delta = pending[t]
            pending[t] = 0
            if not delta:
                continue
            work["back_bits"] += delta.bit_count()
            for src, ids in sym_in[t]:
                mask = 0
                for a in ids:
                    bits = pred[a]
                    rest = delta
                    while rest:
                        low = rest & -rest
                        mask |= bits[low.bit_length() - 1]
                        rest ^= low
                add = mask & reach[src] & ~alive[src]
                if add:
                    alive[src] |= add
                    pending[src] |= add
                    if not dirty[src]:
                        dirty[src] = 1
                        push(src)
            for src in eps_in[t]:
                add = delta & reach[src] & ~alive[src]
                if add:
                    alive[src] |= add
                    pending[src] |= add
                    if not dirty[src]:
                        dirty[src] = 1
                        push(src)

        exists = bool((alive[q0] >> p0) & 1)
        product_nodes = sum(mask.bit_count() for mask in reach)
        alive_count = sum(mask.bit_count() for mask in alive)
        span.set(
            product_nodes=product_nodes, alive=alive_count, exists=exists,
            **work,
        )
        work["product_nodes"] = product_nodes
        work["alive_nodes"] = alive_count
        record_work(obs.metrics(), "game", work,
                    core="bitset", algorithm="possible")

    return PossibleAnalysis(
        word=tuple(word),
        k=k,
        target=target,
        expansion=expansion,
        target_dfa=target_view,
        alphabet=alphabet,
        alive=PNodeBitSet(dict(enumerate(alive))),
        exists=exists,
        stats=GameStats(
            expansion_states=expansion.n_states,
            expansion_edges=len(expansion.edges),
            complement_states=target_bit.n,
            product_nodes=product_nodes,
            product_explored=product_nodes,
            marked_nodes=alive_count,
        ),
    )
