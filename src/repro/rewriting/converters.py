"""Automatic data converters (the conclusion's first extension).

"One may then want to modify the data and convert it to the right
structure, using data translation techniques [...] As a simple example,
one may need to convert a temperature from Celsius degrees to
Fahrenheit."  The paper leaves converters out of scope; we provide the
natural hook: small structural/value converters that the Schema
Enforcement module may apply when plain rewriting cannot reach the
target schema.

Converters are deliberately local (one node at a time, bottom-up) and
declarative, so their effect is predictable:

- :class:`RenameLabel` — ``temperature`` → ``temp``;
- :class:`MapData` — transform the data value under a given label
  (Celsius → Fahrenheit);
- :class:`Unwrap` — splice a wrapper element's children in its place;
- :class:`Wrap` — wrap an element in a new parent label;
- :class:`DropElement` — delete elements the target does not know.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.doc.document import Document
from repro.doc.nodes import Element, FunctionCall, Node, Text, with_children


class Converter:
    """Base class: a local, idempotent-per-node document transformation."""

    def apply(self, node: Node) -> Optional[Tuple[Node, ...]]:
        """The replacement forest for ``node``, or None to leave it alone."""
        raise NotImplementedError


@dataclass(frozen=True)
class RenameLabel(Converter):
    """Rename every element with one label to another."""

    old: str
    new: str

    def apply(self, node: Node) -> Optional[Tuple[Node, ...]]:
        if isinstance(node, Element) and node.label == self.old:
            return (Element(self.new, node.children),)
        return None


@dataclass(frozen=True)
class MapData(Converter):
    """Transform the data value directly under a given element label.

    The classic Celsius-to-Fahrenheit converter::

        MapData("temp", lambda v: "%.0f" % (float(v) * 9 / 5 + 32))
    """

    label: str
    transform: Callable[[str], str] = field(compare=False)

    def apply(self, node: Node) -> Optional[Tuple[Node, ...]]:
        if (
            isinstance(node, Element)
            and node.label == self.label
            and len(node.children) == 1
            and isinstance(node.children[0], Text)
        ):
            new_value = self.transform(node.children[0].value)
            if new_value == node.children[0].value:
                return None
            return (Element(node.label, (Text(new_value),)),)
        return None


@dataclass(frozen=True)
class Unwrap(Converter):
    """Replace a wrapper element by its children."""

    label: str

    def apply(self, node: Node) -> Optional[Tuple[Node, ...]]:
        if isinstance(node, Element) and node.label == self.label:
            return node.children
        return None


@dataclass(frozen=True)
class Wrap(Converter):
    """Wrap elements of one label inside a new parent element."""

    label: str
    wrapper: str

    def apply(self, node: Node) -> Optional[Tuple[Node, ...]]:
        if isinstance(node, Element) and node.label == self.label:
            return (Element(self.wrapper, (node,)),)
        return None


@dataclass(frozen=True)
class DropElement(Converter):
    """Delete every element with the given label."""

    label: str

    def apply(self, node: Node) -> Optional[Tuple[Node, ...]]:
        if isinstance(node, Element) and node.label == self.label:
            return ()
        return None


def convert_forest(
    forest: Sequence[Node], converters: Sequence[Converter]
) -> Tuple[Node, ...]:
    """Apply converters bottom-up across a sibling forest.

    Children are converted before their parent, and each converter fires
    at most once per (new) node per pass — ``Wrap`` does not re-wrap its
    own output.
    """
    result: List[Node] = []
    for node in forest:
        result.extend(_convert_node(node, converters))
    return tuple(result)


def _convert_node(
    node: Node, converters: Sequence[Converter]
) -> Tuple[Node, ...]:
    if isinstance(node, Element):
        node = with_children(node, convert_forest(node.children, converters))
    elif isinstance(node, FunctionCall):
        node = with_children(node, convert_forest(node.params, converters))
    current: Tuple[Node, ...] = (node,)
    for converter in converters:
        next_nodes: List[Node] = []
        for item in current:
            replacement = converter.apply(item)
            if replacement is None:
                next_nodes.append(item)
            else:
                next_nodes.extend(replacement)
        current = tuple(next_nodes)
    return current


def convert_document(
    document: Document, converters: Sequence[Converter]
) -> Document:
    """Apply converters across a whole document.

    The root element is never spliced away: converters that would delete
    or multiply it raise :class:`ValueError`.
    """
    forest = convert_forest((document.root,), converters)
    if len(forest) != 1:
        raise ValueError(
            "converters must preserve a single document root "
            "(got %d trees)" % len(forest)
        )
    return Document(forest[0])
