"""Possible rewriting (Figure 9): reachability instead of a game.

Where safe rewriting demands success for *every* type-conforming output,
possible rewriting asks whether *some* sequence of calls with some lucky
outputs makes the word match.  On automata this is plain language
intersection: build ``A_w^k × A`` (the target itself, not its complement)
and test whether an accepting state is reachable (steps 4-6).

Execution (steps 7-10) follows an accepting path, invoking as the fork
options on it dictate — and **backtracks** when a call returns a value
that does not allow continuing (step 9).  Side effects of backtracked
calls have already happened; the invocation log keeps them, flagged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.automata.dfa import DFA
from repro.automata.symbols import Alphabet, class_matches, concretize_class
from repro.compile import context as compile_context
from repro.doc.nodes import FunctionCall, Node, symbol_of
from repro.errors import (
    FunctionUnavailableError,
    NoPossibleRewritingError,
    RewriteExecutionError,
    ServiceFault,
)
from repro.obs import context as obs
from repro.obs.metrics import record_work
from repro.regex.ast import Regex
from repro.rewriting.expansion import Edge, Expansion, build_expansion
from repro.rewriting.plan import InvocationLog, timed_invoke
from repro.rewriting.safe import GameStats, Invoker, PNode, problem_alphabet


@dataclass
class PossibleAnalysis:
    """The solved reachability problem for one children word.

    ``alive`` contains every reachable product node from which an
    accepting node is still reachable; a rewriting may exist iff the
    initial node is alive (step 6).
    """

    word: Tuple[str, ...]
    k: int
    target: Regex
    expansion: Expansion
    target_dfa: DFA
    alphabet: Alphabet
    alive: Set[PNode]
    exists: bool
    stats: GameStats

    @property
    def initial(self) -> PNode:
        return (self.expansion.initial, self.target_dfa.initial)

    def step(self, p: int, symbol: str) -> int:
        """One target-DFA move (the DFA is completed)."""
        return self.target_dfa.transitions[p][self.alphabet.canon(symbol)]

    def is_accepting(self, node: PNode) -> bool:
        q, p = node
        return q == self.expansion.final and p in self.target_dfa.accepting

    def witness(self) -> Tuple[str, ...]:
        """Some word of ``lang(A_w^k) ∩ lang(R)`` — the hoped-for result.

        Raises :class:`NoPossibleRewritingError` when none exists.
        """
        if not self.exists:
            raise NoPossibleRewritingError(
                "%s cannot rewrite into %s" % (".".join(self.word), self.target)
            )
        # BFS over alive nodes, collecting emitted symbols.
        from collections import deque

        queue = deque([(self.initial, ())])
        seen = {self.initial}
        while queue:
            node, emitted = queue.popleft()
            if self.is_accepting(node):
                return emitted
            for edge, symbol, succ in _successors(self, node):
                if succ in self.alive and succ not in seen:
                    seen.add(succ)
                    extended = emitted + ((symbol,) if symbol else ())
                    queue.append((succ, extended))
        raise AssertionError("alive initial node but no accepting path")


def _successors(
    analysis: PossibleAnalysis, node: PNode
) -> List[Tuple[Edge, Optional[str], PNode]]:
    """All product moves — fork options are plain edges here (no game)."""
    q, p = node
    result: List[Tuple[Edge, Optional[str], PNode]] = []
    for edge in analysis.expansion.edges_from(q):
        if edge.is_epsilon:
            result.append((edge, None, (edge.target, p)))
            continue
        for symbol in concretize_class(edge.guard, analysis.alphabet):
            result.append((edge, symbol, (edge.target, analysis.step(p, symbol))))
    return result


def analyze_possible(
    word: Sequence[str],
    output_types: Dict[str, Regex],
    target: Regex,
    k: int = 1,
    invocable: Optional[Callable[[str], bool]] = None,
    compile_cache=None,
) -> PossibleAnalysis:
    """Solve possible rewriting: co-reachability on ``A_w^k × A``.

    Polynomial in the schemas (no complementation), as Section 5 notes.
    The target DFA comes minimized from the compilation cache; the
    reachability answer and the witness depend only on its language, so
    results match the uncached pipeline exactly.

    With ``REPRO_AUTOMATA_CORE=bitset`` both reachability passes run as
    mask fixpoints in :mod:`repro.rewriting.bitgame`.
    """
    from repro.automata import core as automata_core

    if automata_core.use_bitset():
        from repro.rewriting.bitgame import analyze_possible_bitset

        return analyze_possible_bitset(
            word, output_types, target, k=k, invocable=invocable,
            compile_cache=compile_cache,
        )
    tracer = obs.tracer()
    cc = compile_cache if compile_cache is not None else compile_context.cache()
    with tracer.span("product", algorithm="possible", k=k) as span:
        alphabet = problem_alphabet(word, output_types, target)
        expansion = build_expansion(
            word, output_types, k, invocable, compile_cache=cc
        )
        target_dfa = cc.target_dfa(target, alphabet)
        span.set(
            expansion_states=expansion.n_states,
            target_states=target_dfa.n_states,
        )

    analysis = PossibleAnalysis(
        word=tuple(word),
        k=k,
        target=target,
        expansion=expansion,
        target_dfa=target_dfa,
        alphabet=alphabet,
        alive=set(),
        exists=False,
        stats=GameStats(
            expansion_states=expansion.n_states,
            expansion_edges=len(expansion.edges),
            complement_states=target_dfa.n_states,
        ),
    )

    with tracer.span("game", algorithm="possible") as span:
        # Forward reachability.
        forward_pops = 0
        reachable: Set[PNode] = {analysis.initial}
        edges_in: Dict[PNode, List[PNode]] = {}
        worklist = [analysis.initial]
        while worklist:
            node = worklist.pop()
            forward_pops += 1
            for _edge, _symbol, succ in _successors(analysis, node):
                edges_in.setdefault(succ, []).append(node)
                if succ not in reachable:
                    reachable.add(succ)
                    worklist.append(succ)

        # Backward co-reachability from accepting nodes (step 5).
        backward_pops = 0
        alive = {node for node in reachable if analysis.is_accepting(node)}
        worklist = list(alive)
        while worklist:
            node = worklist.pop()
            backward_pops += 1
            for previous in edges_in.get(node, ()):
                if previous not in alive:
                    alive.add(previous)
                    worklist.append(previous)

        analysis.alive = alive
        analysis.exists = analysis.initial in alive
        span.set(
            product_nodes=len(reachable),
            alive=len(alive),
            exists=analysis.exists,
            forward_pops=forward_pops,
            backward_pops=backward_pops,
        )
        record_work(
            obs.metrics(), "game",
            {"forward_pops": forward_pops, "backward_pops": backward_pops,
             "product_nodes": len(reachable), "alive_nodes": len(alive)},
            core="dict", algorithm="possible",
        )

    analysis.stats.product_nodes = len(reachable)
    analysis.stats.product_explored = len(reachable)
    analysis.stats.marked_nodes = len(alive)
    return analysis


# ---------------------------------------------------------------------------
# Backtracking execution (steps 7-10)
# ---------------------------------------------------------------------------

#: Work items for the executor: actual nodes to consume, or copy exits.
_Item = Tuple[str, object]


def execute_possible(
    analysis: PossibleAnalysis,
    children: Sequence[Node],
    invoker: Invoker,
    log: Optional[InvocationLog] = None,
    cost_of: Optional[Callable[[str], float]] = None,
    max_invocations: int = 10_000,
) -> Tuple[Tuple[Node, ...], InvocationLog]:
    """Execute with backtracking; returns the rewritten children.

    Fork options are tried cheapest-first (keep costs nothing).  When an
    invocation's actual output leaves the alive region the branch is
    abandoned — the call is flagged as backtracked in the log, because
    its side effects are not undone — and the next option is tried.

    Invocations that *fault* are treated the same way: the branch fails
    and the search backtracks to other options instead of aborting, so a
    flaky provider only costs the plans that needed it.  If every branch
    fails and the resilient layer declared some function unavailable,
    that :class:`FunctionUnavailableError` is re-raised so the engine
    can degrade gracefully (re-plan without the dead function).

    Raises :class:`NoPossibleRewritingError` when the analysis already
    ruled a rewriting out, :class:`RewriteExecutionError` when every
    branch fails at run time.
    """
    if not analysis.exists:
        raise NoPossibleRewritingError(
            "%s cannot rewrite into %s (no word of the expansion is in the "
            "target language)" % (".".join(analysis.word) or "eps", analysis.target)
        )
    log = log if log is not None else InvocationLog()
    cost_of = cost_of or (lambda _name: 1.0)
    budget = [max_invocations]
    faults: List[ServiceFault] = []

    items: Tuple[_Item, ...] = tuple(("node", child, 1) for child in children)
    result = _search(
        analysis, analysis.initial, items, invoker, log, cost_of, budget, faults
    )
    if result is None:
        for fault in faults:
            if isinstance(fault, FunctionUnavailableError):
                raise fault
        if faults:
            raise RewriteExecutionError(
                "every backtracking branch failed; %d branch(es) died on "
                "service faults (first: %s)" % (len(faults), faults[0])
            )
        raise RewriteExecutionError(
            "every backtracking branch failed: the services never returned "
            "outputs matching the target"
        )
    return tuple(result), log


def _search(
    analysis: PossibleAnalysis,
    node: PNode,
    items: Tuple[_Item, ...],
    invoker: Invoker,
    log: InvocationLog,
    cost_of: Callable[[str], float],
    budget: List[int],
    faults: List[ServiceFault],
) -> Optional[List[Node]]:
    if node not in analysis.alive:
        return None
    if not items:
        return [] if analysis.is_accepting(node) else None

    kind, payload, depth = items[0]
    rest = items[1:]
    expansion = analysis.expansion

    if kind == "exit":
        copy_id = payload  # type: ignore[assignment]
        copy = expansion.copies[copy_id]
        return_edge_id = copy.return_edges.get(node[0])
        if return_edge_id is None:
            return None  # output did not complete the copy's language
        edge = expansion.edge(return_edge_id)
        return _search(
            analysis, (edge.target, node[1]), rest, invoker, log, cost_of,
            budget, faults,
        )

    child: Node = payload  # type: ignore[assignment]
    symbol = symbol_of(child)
    q, p = node
    candidates = [
        edge
        for edge in expansion.edges_from(q)
        if edge.kind == "symbol" and class_matches(edge.guard, symbol)
    ]
    for edge in candidates:
        # Option 1 (free): keep the node as is.
        succ = (edge.target, analysis.step(p, symbol))
        sub = _search(
            analysis, succ, rest, invoker, log, cost_of, budget, faults
        )
        if sub is not None:
            return [child] + sub
        # Option 2: invoke, when this edge is a fork and the child a call.
        if edge.invoke_edge is None or not isinstance(child, FunctionCall):
            continue
        invoke_edge = expansion.edge(edge.invoke_edge)
        entry = (invoke_edge.target, p)
        if entry not in analysis.alive:
            continue
        if budget[0] <= 0:
            raise RewriteExecutionError("invocation budget exhausted")
        budget[0] -= 1
        try:
            forest, elapsed = timed_invoke(invoker, child)
        except ServiceFault as fault:
            # A faulted invocation fails only this branch: keep searching
            # other options (step 9's backtracking extended to faults).
            if getattr(fault, "function", None) is None:
                fault.function = child.name
            faults.append(fault)
            continue
        record_index = len(log.records)
        log.add(
            child.name, depth, tuple(symbol_of(t) for t in forest),
            cost_of(child.name), elapsed=elapsed,
        )
        new_items = (
            tuple(("node", tree, depth + 1) for tree in forest)
            + (("exit", invoke_edge.copy, depth),)
            + rest
        )
        sub = _search(
            analysis, entry, new_items, invoker, log, cost_of, budget, faults
        )
        if sub is not None:
            return sub
        log.mark_backtracked(record_index)
    return None
