"""Right-to-left rewritings (footnote 4 of the paper).

The paper restricts attention to one-pass *left-to-right* rewritings and
notes "one could choose similarly right-to-left".  The two are not
equivalent: a decision about an early call sometimes has to depend on
the output of a *later* one, which only a right-to-left pass can see.
The canonical witness (benchmark E16):

    w = f.g    tau_out(f) = c (fixed)    tau_out(g) = a | b (adversarial)
    R = (c.a) | (f.b)

Left to right, ``f`` must be decided before ``g``'s output is known:
keeping commits to ``f.b`` and invoking commits to ``c.a``, and either
way the adversary answers with the other letter — unsafe.  Right to
left, invoke ``g`` first and decide ``f`` *knowing* the answer — safe.

Implementation by symmetry: reverse the word, the target and every
output type, run the left-to-right machinery, and mirror the execution
(children reversed on the way in, results and output forests reversed at
the boundary).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.doc.nodes import Node
from repro.regex.ast import Regex
from repro.regex.ops import reverse
from repro.rewriting.lazy import analyze_safe_lazy
from repro.rewriting.plan import InvocationLog
from repro.rewriting.safe import Invoker, SafeAnalysis, analyze_safe, execute_safe

LTR = "ltr"
RTL = "rtl"


def analyze_safe_directed(
    word: Sequence[str],
    output_types: Dict[str, Regex],
    target: Regex,
    k: int = 1,
    invocable: Optional[Callable[[str], bool]] = None,
    direction: str = LTR,
    lazy: bool = True,
) -> SafeAnalysis:
    """Safe analysis in either direction.

    For ``direction="rtl"`` the returned analysis is over the *reversed*
    problem; use :func:`execute_safe_directed` (which un-mirrors) rather
    than calling :func:`~repro.rewriting.safe.execute_safe` directly.
    """
    if direction not in (LTR, RTL):
        raise ValueError("direction must be 'ltr' or 'rtl'")
    analyze = analyze_safe_lazy if lazy else analyze_safe
    if direction == LTR:
        return analyze(word, output_types, target, k=k, invocable=invocable)
    return analyze(
        tuple(reversed(tuple(word))),
        {name: reverse(expr) for name, expr in output_types.items()},
        reverse(target),
        k=k,
        invocable=invocable,
    )


def execute_safe_directed(
    analysis: SafeAnalysis,
    children: Sequence[Node],
    invoker: Invoker,
    direction: str = LTR,
    log: Optional[InvocationLog] = None,
    cost_of: Optional[Callable[[str], float]] = None,
) -> Tuple[Tuple[Node, ...], InvocationLog]:
    """Execute a directed analysis over the actual children.

    In RTL mode the children are processed right to left and every
    invoked call's output forest is mirrored at the boundary, so the
    analysis (which runs over the reversed problem) sees a consistent
    stream; the final result is mirrored back to document order.
    """
    if direction == LTR:
        return execute_safe(analysis, children, invoker, log, cost_of)

    def mirrored_invoker(fc):
        return tuple(reversed(tuple(invoker(fc))))

    new_children, out_log = execute_safe(
        analysis, tuple(reversed(tuple(children))), mirrored_invoker,
        log, cost_of,
    )
    return tuple(reversed(new_children)), out_log


def safe_in_some_direction(
    word: Sequence[str],
    output_types: Dict[str, Regex],
    target: Regex,
    k: int = 1,
    invocable: Optional[Callable[[str], bool]] = None,
) -> Optional[str]:
    """Which one-pass direction (if any) admits a safe rewriting.

    Returns ``"ltr"``, ``"rtl"`` (only when ltr fails) or ``None``.
    A cheap widening of the paper's restriction: two passes instead of
    one unrestricted search.
    """
    if analyze_safe_directed(
        word, output_types, target, k, invocable, LTR
    ).exists:
        return LTR
    if analyze_safe_directed(
        word, output_types, target, k, invocable, RTL
    ).exists:
        return RTL
    return None
