"""The document-level rewriting driver (Section 4, three stages).

Given a document ``t``, a sender schema ``s0`` (the WSDL-given signatures
of every function around) and a data exchange schema ``s``, the driver:

1. **rewrites function parameters bottom-up** — the deepest calls first,
   so that by the time a call may be invoked its own parameters already
   conform to its input type;
2. **traverses the tree top-down**, and
3. **rewrites each node's children word** with the word-level algorithms
   (safe by default, with optional fallback to possible rewriting — the
   two-step process described at the start of Section 3).

The engine is transport-agnostic: it takes an *invoker* callable
(``FunctionCall -> forest``); :mod:`repro.axml.enforcement` wires it to
the simulated service fabric.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.automata.symbols import DATA
from repro.compile import context as compile_context
from repro.doc.document import Document
from repro.doc.nodes import Element, FunctionCall, Node, Text, symbol_of, with_children
from repro.errors import (
    FunctionUnavailableError,
    NoPossibleRewritingError,
    NoSafeRewritingError,
    RewriteError,
    SchemaError,
)
from repro.obs import context as obs
from repro.regex.ast import Regex
from repro.rewriting.cost import UNIT, CostModel
from repro.rewriting.lazy import analyze_safe_lazy
from repro.rewriting.mixed import pre_materialize
from repro.rewriting.plan import InvocationLog
from repro.rewriting.possible import analyze_possible, execute_possible
from repro.rewriting.safe import Invoker, analyze_safe, execute_safe
from repro.schema.model import Schema
from repro.schema.patterns import InvocationPolicy, allow_all

#: Rewriting guarantee levels the engine supports.
SAFE = "safe"
POSSIBLE = "possible"
AUTO = "auto"  # try safe first, fall back to possible (Section 3's process)


@dataclass
class RewriteResult:
    """What :meth:`RewriteEngine.rewrite` produced."""

    document: Document
    log: InvocationLog
    mode_used: str  # SAFE or POSSIBLE — the guarantee that actually held
    words_rewritten: int = 0  # how many children words were processed
    product_nodes: int = 0  # total product size across all word problems
    #: Functions the engine stopped invoking after the resilient layer
    #: gave up on them (AUTO-mode graceful degradation).
    degraded_functions: Tuple[str, ...] = ()
    #: Analysis-cache efficacy during this rewrite (identical
    #: (word, target) problems recur across sibling nodes).
    cache_hits: int = 0
    cache_misses: int = 0
    #: The concurrent materialization scheduler's
    #: :class:`repro.exec.ExecReport`, when prefetching ran (None on the
    #: sequential path).
    exec_report: Optional[object] = None

    @property
    def calls_made(self) -> int:
        return len(self.log)

    @property
    def degraded(self) -> bool:
        return bool(self.degraded_functions)


@dataclass
class RewriteEngine:
    """Rewrites documents into a data exchange schema.

    Args:
        target_schema: the agreed exchange schema ``s``.
        sender_schema: ``s0`` — signatures of functions the target does
            not declare (assumed consistent with ``s`` where they
            overlap, as in Section 4).
        k: the depth bound of Definition 7.
        mode: ``"safe"`` (fail when no safe rewriting exists),
            ``"possible"`` or ``"auto"``.
        policy: the invocable/non-invocable partition (Section 2.1).
        cost_model: prices used for logging and for the mixed pre-pass.
        lazy: use the Section 7 lazy game solver (same answers, fewer
            explored nodes).
        eager: optional predicate selecting calls to pre-materialize (the
            mixed approach of Section 5); None disables the pre-pass.
        workers: worker threads for the concurrent materialization
            scheduler (:mod:`repro.exec`).  ``None`` resolves the
            ``REPRO_WORKERS`` environment variable, defaulting to 1 —
            the classical sequential driver, behavior-identical to
            builds without the scheduler.  Results are merged in
            document order, so output is bit-identical at any count.
        dedup: collapse identical ``(function, normalized-args)`` calls
            to one round-trip while prefetching.  ``None`` resolves
            ``REPRO_DEDUP`` (default on).  Only consulted when
            ``workers > 1``.
        batch: group each prefetch wave's calls by endpoint (one worker
            drains an endpoint's batch).
        compile_cache: the shared automata compilation cache
            (:mod:`repro.compile`).  ``None`` uses the ambient
            process-wide cache; pass an explicit
            :class:`~repro.compile.CompilationCache` to share across a
            chosen set of engines, or
            :data:`~repro.compile.DISABLED` to compile fresh each time
            (the differential harness's baseline).
    """

    target_schema: Schema
    sender_schema: Optional[Schema] = None
    k: int = 1
    mode: str = SAFE
    policy: InvocationPolicy = field(default_factory=allow_all)
    cost_model: CostModel = field(default_factory=lambda: UNIT)
    lazy: bool = True
    eager: Optional[Callable[[str], bool]] = None
    #: Memoize word analyses across nodes.  Documents repeat content
    #: models (every <exhibit> shares one), so identical (word, target)
    #: problems recur; the solved game is stateless and safely reusable.
    cache: bool = True
    workers: Optional[int] = None
    dedup: Optional[bool] = None
    batch: bool = False
    compile_cache: Optional[object] = None
    _analysis_cache: Dict = field(default_factory=dict, repr=False)
    _cache_hits: int = field(default=0, repr=False)
    _cache_misses: int = field(default=0, repr=False)
    _cache_lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False
    )

    @property
    def cache_stats(self) -> Tuple[int, int]:
        """(hits, misses) of the per-engine analysis cache."""
        return (self._cache_hits, self._cache_misses)

    def _ccache(self):
        """The effective compilation cache (field, else the ambient one)."""
        if self.compile_cache is not None:
            return self.compile_cache
        return compile_context.cache()

    @property
    def resolved_workers(self) -> int:
        """The effective worker count (field, else ``REPRO_WORKERS``, else 1)."""
        if self.workers is not None:
            return max(1, int(self.workers))
        env = os.environ.get("REPRO_WORKERS", "").strip()
        if env:
            try:
                return max(1, int(env))
            except ValueError:
                return 1
        return 1

    @property
    def resolved_dedup(self) -> bool:
        """The effective dedup flag (field, else ``REPRO_DEDUP``, else on)."""
        if self.dedup is not None:
            return bool(self.dedup)
        env = os.environ.get("REPRO_DEDUP", "").strip().lower()
        return env not in ("0", "false", "no", "off")

    # -- public API -------------------------------------------------------

    def rewrite(self, document: Document, invoker: Invoker) -> RewriteResult:
        """Rewrite a whole document into the target schema.

        Raises :class:`NoSafeRewritingError` /
        :class:`NoPossibleRewritingError` when the requested guarantee
        cannot be met, and :class:`RewriteExecutionError` when a possible
        rewriting exhausts its backtracking options at run time.
        """
        log = InvocationLog()
        stats = {"words": 0, "product": 0, "mode": SAFE}
        hits_before, misses_before = self.cache_stats
        with obs.tracer().span("document", mode=self.mode, k=self.k) as span:
            invoker, exec_report = self._maybe_prefetch(document, invoker)
            root = document.root
            if isinstance(root, Text):
                result = RewriteResult(document, log, SAFE)
            else:
                new_root = self._rewrite_node(root, invoker, log, stats)
                hits, misses = self.cache_stats
                result = RewriteResult(
                    Document(new_root),
                    log,
                    stats["mode"],
                    words_rewritten=stats["words"],
                    product_nodes=stats["product"],
                    degraded_functions=tuple(sorted(stats.get("dead", ()))),
                    cache_hits=hits - hits_before,
                    cache_misses=misses - misses_before,
                )
            result.exec_report = exec_report
            span.set(
                mode_used=result.mode_used,
                words=result.words_rewritten,
                product_nodes=result.product_nodes,
                calls=result.calls_made,
                cache_hits=result.cache_hits,
                cache_misses=result.cache_misses,
            )
        metrics = obs.metrics()
        if metrics.enabled:
            metrics.counter(
                "repro_documents_rewritten_total", "Documents rewritten"
            ).inc(mode=result.mode_used)
            metrics.histogram(
                "repro_document_words", "Children words per document"
            ).observe(result.words_rewritten)
        return result

    def can_rewrite(self, document: Document) -> bool:
        """Static check: does the requested guarantee hold for the document?

        No service is ever invoked; parameters and children words are
        analyzed with the same staging as :meth:`rewrite`.  Note that for
        ``mode="possible"`` a True answer only means a rewriting *may*
        exist (Definition 5).
        """
        try:
            self._check_node(document.root)
            return True
        except RewriteError:
            return False

    def rewrite_forest(
        self,
        forest: Sequence[Node],
        target: Regex,
        invoker: Invoker,
        log: Optional[InvocationLog] = None,
        stats: Optional[dict] = None,
    ) -> Tuple[Node, ...]:
        """Rewrite a sibling forest so its root word matches ``target``.

        This is the engine's workhorse, also used directly by the Schema
        Enforcement module for service parameters and results.
        """
        log = log if log is not None else InvocationLog()
        stats = stats if stats is not None else {"words": 0, "product": 0, "mode": SAFE}
        prepared = tuple(self._prepare(node, invoker, log, stats) for node in forest)
        if self.eager is not None:
            prepared = pre_materialize(
                prepared, self.eager, invoker, self.k, log,
                self.cost_model.cost_of,
            )
        rewritten = self._rewrite_word(prepared, target, invoker, log, stats)
        return tuple(
            self._descend(node, invoker, log, stats) for node in rewritten
        )

    def analyze_word(self, word: Tuple[str, ...], target: Regex):
        """Solve (and cache) one children word's safe analysis.

        This is the static half of :meth:`_rewrite_word` — no service is
        invoked.  The concurrent materialization planner
        (:func:`repro.exec.build_call_dag`) uses it to preview per-call
        keep/invoke/depends decisions; the cache key matches the one the
        execution path uses, so planning warms the cache.

        Returns None when no safe analysis applies (possible-mode
        engines, schema errors) — callers must then assume nothing about
        the word's decisions.
        """
        if self.mode == POSSIBLE:
            return None
        try:
            target = self._desugared(target, word)
            output_types, invocable = self._word_problem(word)
            cc = self._ccache()
            return self._cached(
                "safe", word, target, frozenset(),
                lambda: (analyze_safe_lazy if self.lazy else analyze_safe)(
                    word, output_types, target, self.k, invocable,
                    compile_cache=cc,
                ),
            )
        except Exception:
            # Planning must be harmless: a word the driver would reject
            # (or fall back on) simply is not prefetched.
            return None

    # -- concurrent materialization (repro.exec) ----------------------------

    def _maybe_prefetch(self, document: Document, invoker):
        """Overlap the document's independent round-trips when asked to.

        Returns ``(invoker-for-the-sequential-pass, ExecReport-or-None)``.
        The sequential pass alone decides what enters the document and in
        which order, so this changes latency, never output.  Skipped for
        possible-mode engines (backtracking makes invocations
        unpredictable) and with an eager pre-pass configured (it already
        invokes calls itself, in its own order).
        """
        workers = self.resolved_workers
        if workers <= 1 or self.mode == POSSIBLE or self.eager is not None:
            return invoker, None
        from repro.exec import ExecPolicy, MaterializationScheduler

        policy = ExecPolicy(
            max_workers=workers, dedup=self.resolved_dedup, batch=self.batch
        )
        scheduler = MaterializationScheduler(self._planning_engine(), policy)
        return scheduler.prefetch(document, invoker)

    def _planning_engine(self) -> "RewriteEngine":
        """A disposable sequential clone used for planning and for the
        prefetch tasks' parameter rewriting.

        Same decision inputs (schemas, k, mode, policy, laziness), but
        its own analysis cache and counters — so this engine's
        ``cache_hits``/``cache_misses`` accounting stays bit-identical
        to a sequential run no matter how much the planner analyzes.
        """
        return RewriteEngine(
            target_schema=self.target_schema,
            sender_schema=self.sender_schema,
            k=self.k,
            mode=self.mode,
            policy=self.policy,
            cost_model=self.cost_model,
            lazy=self.lazy,
            eager=None,
            cache=self.cache,
            workers=1,
            compile_cache=self.compile_cache,
        )

    # -- the three stages ---------------------------------------------------

    def _rewrite_node(self, node: Node, invoker, log, stats) -> Node:
        """Top-down stage for one subtree whose root stays in the document."""
        if isinstance(node, Text):
            return node
        if isinstance(node, FunctionCall):
            input_type = self._input_type(node.name)
            if input_type is None:
                raise SchemaError(
                    "function %r has no declared signature in either schema"
                    % node.name
                )
            params = self.rewrite_forest(node.params, input_type, invoker, log, stats)
            return with_children(node, params)
        content = self.target_schema.type_of(node.label)
        if content is None:
            raise SchemaError(
                "element label %r is not declared by the target schema"
                % node.label
            )
        children = self.rewrite_forest(node.children, content, invoker, log, stats)
        return with_children(node, children)

    def _prepare(self, node: Node, invoker, log, stats) -> Node:
        """Stage 1: rewrite function parameters, deepest calls first."""
        if isinstance(node, FunctionCall):
            input_type = self._input_type(node.name)
            if input_type is None:
                raise SchemaError(
                    "function %r has no declared signature in either schema"
                    % node.name
                )
            params = self.rewrite_forest(node.params, input_type, invoker, log, stats)
            return with_children(node, params)
        return node

    def _descend(self, node: Node, invoker, log, stats) -> Node:
        """Stage 2: continue the top-down traversal below a kept node."""
        if isinstance(node, Element):
            if node.enforced:
                # Sealed by the streaming driver: the subtree's words were
                # rewritten when the element closed; re-descending would
                # redo the analyses and double-count cache lookups.
                return node
            content = self.target_schema.type_of(node.label)
            if content is None:
                raise SchemaError(
                    "element label %r is not declared by the target schema"
                    % node.label
                )
            children = self.rewrite_forest(node.children, content, invoker, log, stats)
            return with_children(node, children)
        return node

    def _rewrite_word(
        self, children: Tuple[Node, ...], target: Regex, invoker, log, stats
    ) -> Tuple[Node, ...]:
        """Stage 3: rewrite one children word (safe, auto or possible).

        In AUTO mode the word *degrades gracefully* under infrastructure
        failure: when the resilient invocation layer gives up on a
        function (:class:`FunctionUnavailableError`, e.g. retries
        exhausted or a breaker stuck open), the word is re-analyzed with
        that function moved to the non-invocable side of the Section 2.1
        partition — the plan may then keep the call intensional or route
        through other providers — instead of failing the whole document.
        """
        word = tuple(symbol_of(node) for node in children)
        target = self._desugared(target, word)
        stats["words"] += 1
        dead = stats.setdefault("dead", set())
        tracer = obs.tracer()
        with tracer.span(
            "node", word=".".join(word) or "eps", length=len(word)
        ) as span:
            while True:
                try:
                    result = self._rewrite_word_once(
                        children, word, target, invoker, log, stats, dead
                    )
                    span.set(mode=stats["mode"])
                    return result
                except FunctionUnavailableError as fault:
                    name = getattr(fault, "function", "")
                    if self.mode != AUTO or not name or name in dead:
                        raise
                    dead.add(name)
                    stats["degradations"] = stats.get("degradations", 0) + 1
                    tracer.event("degrade", function=name)
                    obs.metrics().counter(
                        "repro_degradations_total",
                        "Words re-analyzed around a dead function",
                    ).inc(function=name)

    def _rewrite_word_once(
        self,
        children: Tuple[Node, ...],
        word: Tuple[str, ...],
        target: Regex,
        invoker,
        log,
        stats,
        dead,
    ) -> Tuple[Node, ...]:
        """One analyze-and-execute pass over a children word."""
        output_types, invocable = self._word_problem(word, dead)
        cc = self._ccache()

        if self.mode in (SAFE, AUTO):
            analysis = self._cached(
                "safe", word, target, dead,
                lambda: (analyze_safe_lazy if self.lazy else analyze_safe)(
                    word, output_types, target, self.k, invocable,
                    compile_cache=cc,
                ),
            )
            stats["product"] += analysis.stats.product_nodes
            if analysis.exists:
                new_children, _ = execute_safe(
                    analysis, children, invoker, log, self.cost_model.cost_of
                )
                return new_children
            if self.mode == SAFE:
                raise NoSafeRewritingError(
                    "children word %s has no safe %d-depth rewriting into %s"
                    % (".".join(word) or "eps", self.k, target)
                )
            stats["mode"] = POSSIBLE

        analysis = self._cached(
            "possible", word, target, dead,
            lambda: analyze_possible(word, output_types, target, self.k,
                                     invocable, compile_cache=cc),
        )
        stats["product"] += analysis.stats.product_nodes
        if not analysis.exists:
            raise NoPossibleRewritingError(
                "children word %s cannot rewrite into %s%s"
                % (
                    ".".join(word) or "eps",
                    target,
                    " (with %s unavailable)" % ", ".join(sorted(dead))
                    if dead
                    else "",
                )
            )
        stats["mode"] = POSSIBLE if self.mode != SAFE else stats["mode"]
        new_children, _ = execute_possible(
            analysis, children, invoker, log, self.cost_model.cost_of
        )
        return new_children

    # -- static analysis (no invocations) -----------------------------------

    def _check_node(self, node: Node) -> None:
        if isinstance(node, Text):
            return
        if isinstance(node, FunctionCall):
            input_type = self._input_type(node.name)
            if input_type is None:
                raise NoSafeRewritingError(
                    "function %r has no declared signature" % node.name
                )
            self._check_forest(node.params, input_type)
            return
        content = self.target_schema.type_of(node.label)
        if content is None:
            raise NoSafeRewritingError(
                "element label %r is not declared" % node.label
            )
        self._check_forest(node.children, content)

    def _check_forest(self, forest: Sequence[Node], target: Regex) -> None:
        for node in forest:
            self._check_node(node)
        word = tuple(symbol_of(node) for node in forest)
        output_types, invocable = self._word_problem(word)
        target = self._desugared(target, word)
        cc = self._ccache()
        if self.mode == POSSIBLE:
            analysis = analyze_possible(word, output_types, target, self.k,
                                        invocable, compile_cache=cc)
            if not analysis.exists:
                raise NoPossibleRewritingError(
                    "children word %s cannot rewrite into %s"
                    % (".".join(word) or "eps", target)
                )
            return
        analyze = analyze_safe_lazy if self.lazy else analyze_safe
        analysis = analyze(word, output_types, target, self.k, invocable,
                           compile_cache=cc)
        if not analysis.exists:
            if self.mode == AUTO:
                fallback = analyze_possible(
                    word, output_types, target, self.k, invocable,
                    compile_cache=cc,
                )
                if fallback.exists:
                    return
                raise NoPossibleRewritingError(
                    "children word %s cannot rewrite into %s"
                    % (".".join(word) or "eps", target)
                )
            raise NoSafeRewritingError(
                "children word %s has no safe %d-depth rewriting into %s"
                % (".".join(word) or "eps", self.k, target)
            )

    def _cached(self, kind: str, word, target, dead, compute):
        """Memoize a solved analysis by (kind, word, target, dead set).

        The other inputs (k, policy, schemas) are engine-constant, and
        ``output_types``/``invocable`` are functions of the word and the
        degradation state alone, so the key is exact.  Solved analyses
        are immutable after construction — execution only reads them.

        The word and target enter the key through the compilation
        cache's interned digests — O(1) per repeat lookup instead of
        hashing a deep AST or a long word every time.  Digests are
        content-exact, so hit/miss accounting is bit-identical to the
        structural key (with caching disabled the key falls back to the
        structural objects themselves).
        """
        if not self.cache:
            return self._analyzed(kind, "off", compute)
        cc = self._ccache()
        key = (kind, cc.word_key(word), cc.regex_key(target), frozenset(dead))
        with self._cache_lock:
            analysis = self._analysis_cache.get(key)
            if analysis is None:
                self._cache_misses += 1
            else:
                self._cache_hits += 1
        if analysis is None:
            # Computed outside the lock: the scheduler's workers share
            # the planning clone, and a heavy analysis must not serialize
            # them (a racing duplicate is discarded by setdefault).
            analysis = self._analyzed(kind, "miss", compute)
            with self._cache_lock:
                analysis = self._analysis_cache.setdefault(key, analysis)
        else:
            obs.tracer().event("analysis.cache", kind=kind, outcome="hit")
            metrics = obs.metrics()
            if metrics.enabled:
                metrics.counter(
                    "repro_analysis_cache_total", "Analysis cache lookups"
                ).inc(outcome="hit")
        return analysis

    def _analyzed(self, kind: str, cache_outcome: str, compute):
        """Run one word analysis under an ``analysis`` span."""
        with obs.tracer().span("analysis", kind=kind,
                               cache=cache_outcome) as span:
            analysis = compute()
            span.set(
                exists=analysis.exists,
                product_nodes=analysis.stats.product_nodes,
                explored=analysis.stats.product_explored,
            )
        metrics = obs.metrics()
        if metrics.enabled:
            if cache_outcome == "miss":
                metrics.counter(
                    "repro_analysis_cache_total", "Analysis cache lookups"
                ).inc(outcome="miss")
            metrics.histogram(
                "repro_product_nodes",
                "Reachable product nodes per word analysis",
            ).observe(analysis.stats.product_nodes, kind=kind)
        return analysis

    # -- plumbing -------------------------------------------------------------

    def _input_type(self, name: str) -> Optional[Regex]:
        """``tau_in`` for parameter rewriting: the receiver's view first.

        A kept call is validated by the receiver against the *target*
        schema's input type, so parameters are rewritten toward it; the
        sender schema fills in functions the target does not declare.
        """
        input_type = self.target_schema.input_type(name)
        if input_type is None and self.sender_schema is not None:
            input_type = self.sender_schema.input_type(name)
        return input_type

    def _signature(self, name: str):
        """The *operational* signature: the sender's (WSDL) view first.

        Section 4 assumes s0 and s agree on shared functions and notes
        the algorithm "can be extended to handle distinct signatures".
        The extension implemented here: output types used to build
        ``A_w^k`` come from the sender schema — they describe what the
        services actually return — falling back to the target's
        declaration when the sender has none.
        """
        signature = None
        if self.sender_schema is not None:
            signature = self.sender_schema.signature_of(name)
        if signature is None:
            signature = self.target_schema.signature_of(name)
        return signature

    def _candidates(self, word: Sequence[str]) -> List[str]:
        """Every function name that can appear during this rewriting."""
        names = set(self.target_schema.function_names())
        if self.sender_schema is not None:
            names |= self.sender_schema.function_names()
        names |= {symbol for symbol in word if self._signature(symbol) is not None}
        return sorted(names)

    def _word_problem(self, word: Sequence[str], dead=frozenset()):
        """Output types and the invocability filter for one children word.

        ``dead`` holds functions the resilient layer gave up on during
        this rewrite; they are treated as non-invocable so plans route
        around them (keep the call, or use another provider).
        """
        output_types: Dict[str, Regex] = {}
        for name in self._candidates(word):
            signature = self._signature(name)
            if signature is not None:
                output_types[name] = signature.output_type

        unavailable = frozenset(dead)

        def invocable(name: str) -> bool:
            return self.policy.is_invocable(name) and name not in unavailable

        return output_types, invocable

    def _desugared(self, target: Regex, word: Sequence[str]) -> Regex:
        """Expand target-schema pattern atoms over the candidate functions."""
        if not self.target_schema.patterns:
            return target
        candidates = self._candidates(word)
        schema = Schema({"__target__": target}, {}, dict(self.target_schema.patterns))
        return schema.desugar_patterns(candidates, self._signature).label_types[
            "__target__"
        ]
