"""Safe rewriting: the marking game on ``A_w^k × Ā`` (Figure 3).

Construction (steps 1-14): build ``A_w^k`` (see
:mod:`repro.rewriting.expansion`), the complete deterministic complement
``Ā`` of the target language, and their cartesian product restricted to
reachable states.

Marking (steps 15-17) is a two-player reachability game:

- *our* moves are the fork options — at every expanded function edge we
  choose to keep the call (follow the function edge) or invoke it
  (follow the epsilon edge into the signature copy);
- the *adversary's* moves are everything else — which word an invoked
  call actually returns (the branching inside signature copies, and
  where the output stops).

A product node is **marked** (bad: the adversary can force a word outside
the target language) iff it is accepting — the base word was consumed and
``Ā`` accepts, i.e. the produced word is *not* in ``R`` — or some
adversarial alternative has *all* of our options marked.  A safe
rewriting exists iff the initial state is unmarked (step 18); the
unmarked region is then a winning strategy that
:func:`execute_safe` follows while performing real calls (steps 19-23).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.automata.dfa import DFA, complement, determinize
from repro.automata.glushkov import glushkov_nfa
from repro.automata.symbols import Alphabet, class_matches, concretize_class, regex_symbols
from repro.compile import context as compile_context
from repro.doc.nodes import FunctionCall, Node, symbol_of
from repro.errors import NoSafeRewritingError, RewriteExecutionError, ServiceFault
from repro.obs import context as obs
from repro.obs.metrics import record_work
from repro.regex.ast import Regex
from repro.rewriting.expansion import Edge, Expansion, build_expansion
from repro.rewriting.plan import (
    DEPENDS,
    INVOKE,
    KEEP,
    Decision,
    InvocationLog,
    timed_invoke,
)

#: A product node: (expansion state, complement state).
PNode = Tuple[int, int]


def problem_alphabet(
    word: Sequence[str], output_types: Dict[str, Regex], target: Regex
) -> Alphabet:
    """The closed alphabet of one rewriting problem.

    Every symbol of the word, of any reachable output type, and of the
    target, plus the ``OTHER`` catch-all — the finite universe over which
    the complement automaton is made complete.
    """
    sets = [set(word), regex_symbols(target), set(output_types)]
    sets.extend(regex_symbols(expr) for expr in output_types.values())
    return Alphabet.closure(*sets)


def target_complement(target: Regex, alphabet: Alphabet) -> DFA:
    """The complete deterministic complement ``Ā`` (step 4 of Figure 3)."""
    return complement(determinize(glushkov_nfa(target), alphabet))


@dataclass
class GameStats:
    """Size accounting, consumed by benchmarks E7-E9."""

    expansion_states: int = 0
    expansion_edges: int = 0
    complement_states: int = 0
    product_nodes: int = 0
    product_explored: int = 0  # nodes actually expanded (lazy < eager)
    marked_nodes: int = 0


@dataclass
class SafeAnalysis:
    """The solved marking game for one children word.

    ``exists`` answers step 18 (is the initial state unmarked?); the rest
    is the winning strategy the executor follows.
    """

    word: Tuple[str, ...]
    k: int
    target: Regex
    expansion: Expansion
    comp: DFA
    alphabet: Alphabet
    marked: Set[PNode]
    explored: Set[PNode]
    exists: bool
    stats: GameStats

    # -- strategy helpers -------------------------------------------------

    def is_marked(self, node: PNode) -> bool:
        """Is a product node bad?

        Nodes never explored can only be reached through pruned (already
        bad) regions, so the lazy variant treats them as bad too.
        """
        if node in self.marked:
            return True
        return node not in self.explored

    def comp_step(self, p: int, symbol: str) -> int:
        """One complement move (the complement is complete)."""
        return self.comp.transitions[p][self.alphabet.canon(symbol)]

    @property
    def initial(self) -> PNode:
        return (self.expansion.initial, self.comp.initial)

    def decision(self, node: PNode, edge: Edge) -> str:
        """The strategy's choice at a fork: keep if safe, else invoke."""
        q, p = node
        keep_succ = (edge.target, self.comp_step(p, str(edge.guard)))
        if not self.is_marked(keep_succ):
            return KEEP
        return INVOKE

    def preview_decisions(self) -> List[Decision]:
        """What the strategy does with the base word's function calls.

        Choices downstream of an invocation may depend on the actual
        output; those are reported as ``"depends"``.  For the paper's
        newspaper example against schema (**) this yields exactly
        "invoke Get_Temp@2, keep TimeOut@3".
        """
        if not self.exists:
            raise NoSafeRewritingError(
                "no safe %d-depth rewriting of %s" % (self.k, ".".join(self.word))
            )
        decisions: List[Decision] = []
        current: Set[PNode] = {self.initial}
        for position, symbol in enumerate(self.word):
            edge = self._base_edge(position)
            if edge.invoke_edge is not None:
                actions = set()
                followers: Set[PNode] = set()
                for node in current:
                    action = self.decision(node, edge)
                    actions.add(action)
                    if action == KEEP:
                        _q, p = node
                        followers.add(
                            (edge.target, self.comp_step(p, str(edge.guard)))
                        )
                    else:
                        invoke = self.expansion.edge(edge.invoke_edge)
                        entry = (invoke.target, node[1])
                        followers |= self._copy_exits(entry, edge.target)
                action = actions.pop() if len(actions) == 1 else DEPENDS
                decisions.append(Decision(position, str(edge.guard), action))
                current = followers
            else:
                current = {
                    (edge.target, self.comp_step(p, symbol)) for _q, p in current
                }
            current = {node for node in current if not self.is_marked(node)}
        return decisions

    def _base_edge(self, position: int) -> Edge:
        for edge in self.expansion.edges_from(position):
            if edge.depth == 0 and edge.kind == "symbol":
                return edge
        raise AssertionError("missing base edge at position %d" % position)

    def _copy_exits(self, entry: PNode, exit_state: int) -> Set[PNode]:
        """Unmarked product nodes where an invocation can come back out."""
        exits: Set[PNode] = set()
        seen = {entry}
        stack = [entry]
        while stack:
            node = stack.pop()
            if self.is_marked(node):
                continue
            if node[0] == exit_state:
                exits.add(node)
                continue
            for _alt in alternatives(self.expansion, self, node):
                for succ in _alt.options:
                    if succ not in seen:
                        seen.add(succ)
                        stack.append(succ)
        return exits


@dataclass(frozen=True)
class Alternative:
    """One adversarial alternative at a product node.

    ``options`` are *our* choices within it: two successors for a fork
    (keep, invoke), one otherwise.
    """

    edge_id: int
    options: Tuple[PNode, ...]
    symbol: Optional[str] = None  # concrete letter for wildcard edges

    @property
    def is_fork(self) -> bool:
        return len(self.options) == 2


def alternatives(expansion: Expansion, analysis, node: PNode) -> List[Alternative]:
    """Enumerate the adversarial alternatives at a product node.

    - a fork (expanded function edge) contributes one alternative with
      two options: keep (consume the function name) or invoke (epsilon
      into the copy);
    - every other symbol edge contributes one single-option alternative
      per concrete letter its guard matches (the adversary picks the
      letter of a wildcard);
    - a return edge contributes a single-option epsilon alternative (the
      adversary decides where an output word stops).
    """
    q, p = node
    result: List[Alternative] = []
    for edge in expansion.edges_from(q):
        if edge.kind == "invoke":
            continue  # reachable only as its call edge's second option
        if edge.kind == "return":
            result.append(Alternative(edge.eid, ((edge.target, p),)))
            continue
        if edge.invoke_edge is not None:
            keep = (edge.target, analysis.comp_step(p, str(edge.guard)))
            invoke_edge = expansion.edge(edge.invoke_edge)
            invoke = (invoke_edge.target, p)
            result.append(Alternative(edge.eid, (keep, invoke)))
            continue
        for symbol in concretize_class(edge.guard, analysis.alphabet):
            result.append(
                Alternative(
                    edge.eid,
                    ((edge.target, analysis.comp_step(p, symbol)),),
                    symbol,
                )
            )
    return result


def analyze_safe(
    word: Sequence[str],
    output_types: Dict[str, Regex],
    target: Regex,
    k: int = 1,
    invocable: Optional[Callable[[str], bool]] = None,
    compile_cache=None,
) -> SafeAnalysis:
    """Solve the safe-rewriting game eagerly (the Figure 3 algorithm).

    Builds the full reachable product, then computes the marking as a
    backward least fixpoint with per-alternative counters.  See
    :func:`repro.rewriting.lazy.analyze_safe_lazy` for the pruned variant
    the paper's implementation uses (Section 7).

    The expansion and the minimized complement come from the compilation
    cache (the ambient one unless ``compile_cache`` is given), so equal
    targets and output types compile once per process.  Minimization
    preserves the complement's language, which is all the marking game
    observes — verdicts, decisions and outputs are bit-identical to the
    uncached pipeline; only ``stats.complement_states`` shrinks.

    With ``REPRO_AUTOMATA_CORE=bitset`` the game is solved by the
    vectorized mask fixpoint of :mod:`repro.rewriting.bitgame` —
    identical answers and strategy on flat integer-indexed automata.
    """
    from repro.automata import core as automata_core

    if automata_core.use_bitset():
        from repro.rewriting.bitgame import analyze_safe_bitset

        return analyze_safe_bitset(
            word, output_types, target, k=k, invocable=invocable,
            lazy=False, compile_cache=compile_cache,
        )
    tracer = obs.tracer()
    cc = compile_cache if compile_cache is not None else compile_context.cache()
    with tracer.span("product", algorithm="safe-eager", k=k) as span:
        alphabet = problem_alphabet(word, output_types, target)
        expansion = build_expansion(
            word, output_types, k, invocable, compile_cache=cc
        )
        comp = cc.complement(target, alphabet)

        analysis = SafeAnalysis(
            word=tuple(word),
            k=k,
            target=target,
            expansion=expansion,
            comp=comp,
            alphabet=alphabet,
            marked=set(),
            explored=set(),
            exists=False,
            stats=GameStats(
                expansion_states=expansion.n_states,
                expansion_edges=len(expansion.edges),
                complement_states=comp.n_states,
            ),
        )

        # Forward exploration of the reachable product (steps 11-14).
        initial = analysis.initial
        node_alts: Dict[PNode, List[Alternative]] = {}
        explore_pops = 0
        worklist = [initial]
        analysis.explored.add(initial)
        while worklist:
            node = worklist.pop()
            explore_pops += 1
            alts = alternatives(expansion, analysis, node)
            node_alts[node] = alts
            for alt in alts:
                for succ in alt.options:
                    if succ not in analysis.explored:
                        analysis.explored.add(succ)
                        worklist.append(succ)

        for node in analysis.explored:
            node_alts.setdefault(node, [])
        span.set(
            expansion_states=expansion.n_states,
            complement_states=comp.n_states,
            product_nodes=len(analysis.explored),
        )

    # Backward marking fixpoint (steps 15-17).
    with tracer.span("game", algorithm="safe-eager") as span:
        mark_pops = _mark(analysis, node_alts)
        analysis.exists = initial not in analysis.marked
        span.set(marked=len(analysis.marked), exists=analysis.exists,
                 explore_pops=explore_pops, mark_pops=mark_pops)
        record_work(
            obs.metrics(), "game",
            {"explore_pops": explore_pops, "mark_pops": mark_pops,
             "product_nodes": len(analysis.explored),
             "marked_nodes": len(analysis.marked)},
            core="dict", algorithm="safe-eager",
        )

    analysis.stats.product_nodes = len(analysis.explored)
    analysis.stats.product_explored = len(analysis.explored)
    analysis.stats.marked_nodes = len(analysis.marked)
    return analysis


def _mark(analysis: SafeAnalysis, node_alts: Dict[PNode, List[Alternative]]) -> int:
    """Least-fixpoint marking with per-alternative option counters.

    Returns the number of worklist pops — the deterministic work figure
    the trajectory benchmarks track.
    """
    expansion = analysis.expansion
    comp = analysis.comp

    # Reverse index: successor -> [(node, alternative index)].
    reverse: Dict[PNode, List[Tuple[PNode, int]]] = {}
    remaining: Dict[Tuple[PNode, int], int] = {}
    for node, alts in node_alts.items():
        for index, alt in enumerate(alts):
            remaining[(node, index)] = len(set(alt.options))
            for succ in set(alt.options):
                reverse.setdefault(succ, []).append((node, index))

    # Seeds (step 16): word fully produced but accepted by the complement.
    queue: List[PNode] = []
    for node in node_alts:
        q, p = node
        if q == expansion.final and p in comp.accepting:
            analysis.marked.add(node)
            queue.append(node)

    # Propagation (step 17): a node is bad once some alternative has all
    # of its options bad.
    pops = 0
    while queue:
        bad = queue.pop()
        pops += 1
        for node, index in reverse.get(bad, ()):
            if node in analysis.marked:
                continue
            remaining[(node, index)] -= 1
            if remaining[(node, index)] == 0:
                analysis.marked.add(node)
                queue.append(node)
    return pops


# ---------------------------------------------------------------------------
# Execution (steps 19-23)
# ---------------------------------------------------------------------------

#: Invokers take the function node and return the output forest.
Invoker = Callable[[FunctionCall], Sequence[Node]]


def execute_safe(
    analysis: SafeAnalysis,
    children: Sequence[Node],
    invoker: Invoker,
    log: Optional[InvocationLog] = None,
    cost_of: Optional[Callable[[str], float]] = None,
) -> Tuple[Tuple[Node, ...], InvocationLog]:
    """Execute the winning strategy over actual child nodes.

    Walks the children word through the unmarked region of the product;
    at each fork the strategy keeps the call when the keep successor is
    unmarked (invocations cost, staying put is free) and invokes it
    otherwise.  Outputs of invoked calls are consumed inside the attached
    signature copy — nested calls recurse, which is exactly step 22's
    "continue the path with the new rewritten word".

    Raises :class:`NoSafeRewritingError` when ``analysis.exists`` is
    False, and :class:`RewriteExecutionError` when a service returns a
    forest outside its declared output type (the only way execution can
    fail once safety is established).
    """
    if not analysis.exists:
        raise NoSafeRewritingError(
            "no safe %d-depth rewriting of %s into %s"
            % (analysis.k, ".".join(analysis.word) or "eps", analysis.target)
        )
    log = log if log is not None else InvocationLog()
    cost_of = cost_of or (lambda _name: 1.0)

    out: List[Node] = []
    node = analysis.initial
    for child in children:
        node = _consume(analysis, node, child, out, invoker, log, cost_of, depth=1)
    if node[0] != analysis.expansion.final:
        raise RewriteExecutionError("execution stopped before the word's end")
    if analysis.is_marked(node):
        raise AssertionError("strategy walked into a marked state")
    return tuple(out), log


def _consume(
    analysis: SafeAnalysis,
    node: PNode,
    child: Node,
    out: List[Node],
    invoker: Invoker,
    log: InvocationLog,
    cost_of: Callable[[str], float],
    depth: int,
) -> PNode:
    """Consume one actual child under the strategy; returns the new node."""
    expansion = analysis.expansion
    symbol = symbol_of(child)
    q, p = node

    edge = _matching_edge(analysis, node, symbol)
    if isinstance(child, FunctionCall) and edge.invoke_edge is not None:
        if analysis.decision(node, edge) == KEEP:
            out.append(child)
            return (edge.target, analysis.comp_step(p, symbol))
        # Invoke: call the service, then thread its actual output through
        # the attached signature copy.
        invoke_edge = expansion.edge(edge.invoke_edge)
        copy = expansion.copies[invoke_edge.copy]
        try:
            forest, elapsed = timed_invoke(invoker, child)
        except ServiceFault as fault:
            # The strategy chose to invoke because keeping was unsafe, so
            # there is no local alternative; annotate the fault with the
            # function so the engine can degrade (re-plan without it).
            if getattr(fault, "function", None) is None:
                fault.function = child.name
            raise
        log.add(
            child.name,
            depth,
            tuple(symbol_of(t) for t in forest),
            cost_of(child.name),
            elapsed=elapsed,
        )
        inner: PNode = (invoke_edge.target, p)
        if analysis.is_marked(inner):
            raise AssertionError("invoke option led to a marked state")
        for tree in forest:
            inner = _consume(
                analysis, inner, tree, out, invoker, log, cost_of, depth + 1
            )
        return_edge_id = copy.return_edges.get(inner[0])
        if return_edge_id is None:
            raise RewriteExecutionError(
                "service %r returned %s, which does not complete its "
                "declared output type"
                % (child.name, ".".join(symbol_of(t) for t in forest) or "eps")
            )
        return_edge = expansion.edge(return_edge_id)
        successor = (return_edge.target, inner[1])
        if analysis.is_marked(successor):
            raise AssertionError("return edge led to a marked state")
        return successor

    out.append(child)
    successor = (edge.target, analysis.comp_step(p, symbol))
    if analysis.is_marked(successor):
        raise RewriteExecutionError(
            "symbol %r drives the rewriting into a marked state "
            "(a service output violated its declared type)" % symbol
        )
    return successor


def _matching_edge(analysis: SafeAnalysis, node: PNode, symbol: str) -> Edge:
    """The expansion edge consuming ``symbol`` at this node.

    With one-unambiguous types there is exactly one; with ambiguous types
    any unmarked-successor candidate is safe to follow (an unmarked node
    has no all-bad alternative, and each candidate is its own
    single-option alternative).
    """
    expansion = analysis.expansion
    q, p = node
    candidates = [
        edge
        for edge in expansion.edges_from(q)
        if edge.kind == "symbol" and class_matches(edge.guard, symbol)
    ]
    if not candidates:
        raise RewriteExecutionError(
            "no transition for symbol %r — the document does not match "
            "the analyzed word" % symbol
        )
    if len(candidates) == 1:
        return candidates[0]
    for edge in candidates:
        succ = (edge.target, analysis.comp_step(p, symbol))
        if not analysis.is_marked(succ) or edge.invoke_edge is not None:
            return edge
    return candidates[0]
