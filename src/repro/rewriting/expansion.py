"""The k-depth expansion automaton ``A_w^k`` (Figure 3, steps 5-10).

``A_w^k`` accepts exactly the words that can be produced from ``w`` by a
k-depth left-to-right rewriting.  It starts as the linear automaton for
``w``; then, for k rounds, every *untreated* edge labeled by an invocable
function ``f`` gets a fresh copy of the automaton for ``tau_out(f)``
attached in parallel (linked with epsilon moves), and its source becomes
a **fork node**: the two *fork options* — follow the function edge (do
not invoke) or the new epsilon edge (invoke) — are the choice the
rewriter controls in the marking game of :mod:`repro.rewriting.safe`.

Compared to a plain NFA, edges carry structured metadata:

- ``kind``: ``"symbol"`` (a letter), ``"invoke"`` (the epsilon into a
  copy) or ``"return"`` (the epsilon from a copy's accepting state back
  to the continuation);
- ``invoke_edge``: set on expanded function edges, pairing the edge with
  its invoke alternative;
- ``copy``: which attached signature copy the edge belongs to — the plan
  executor uses it to find the right return edge after consuming a
  call's actual output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.automata.symbols import SymbolClass
from repro.compile import context as compile_context
from repro.regex.ast import Regex


@dataclass
class Edge:
    """One transition of ``A_w^k``."""

    eid: int
    source: int
    target: int
    guard: Optional[SymbolClass]  # None for epsilon edges
    kind: str  # "symbol" | "invoke" | "return"
    depth: int  # expansion round that created the edge (0 = base word)
    copy: Optional[int] = None  # id of the signature copy the edge lives in
    invoke_edge: Optional[int] = None  # for expanded function edges

    @property
    def is_epsilon(self) -> bool:
        return self.guard is None


@dataclass
class CopyInfo:
    """One attached copy of a function's output-type automaton."""

    cid: int
    function: str
    depth: int
    entry: int  # state the invoke edge leads to
    accepting: Tuple[int, ...]  # copy states with a return edge
    return_edges: Dict[int, int]  # accepting copy state -> return edge id
    call_edge: int  # the function edge this copy expands


@dataclass
class Expansion:
    """The automaton ``A_w^k`` with fork bookkeeping."""

    word: Tuple[str, ...]
    k: int
    n_states: int
    initial: int
    final: int  # the single accepting state (end of the base word)
    edges: List[Edge] = field(default_factory=list)
    out: Dict[int, List[int]] = field(default_factory=dict)  # state -> edge ids
    copies: Dict[int, CopyInfo] = field(default_factory=dict)

    def edges_from(self, state: int) -> List[Edge]:
        """Outgoing edges of a state."""
        return [self.edges[eid] for eid in self.out.get(state, ())]

    def edge(self, eid: int) -> Edge:
        """Edge by id."""
        return self.edges[eid]

    def fork_edges(self) -> List[Edge]:
        """All expanded function edges (each defines a fork)."""
        return [e for e in self.edges if e.invoke_edge is not None]

    def size(self) -> Tuple[int, int]:
        """(number of states, number of edges) — benchmark E9 reads this."""
        return (self.n_states, len(self.edges))


def build_expansion(
    word: Sequence[str],
    output_types: Dict[str, Regex],
    k: int = 1,
    invocable: Optional[Callable[[str], bool]] = None,
    compile_cache=None,
) -> Expansion:
    """Build ``A_w^k`` for a children word.

    The whole construction is memoized in the shared compilation cache
    by exact content key — ``(word, output-type digests, k, invocable
    partition)`` — and each attached signature copy draws its Glushkov
    NFA from the same cache, so a function's output type is compiled
    once per process however many times it is expanded.  Expansions are
    immutable after construction, which is what makes the sharing safe.

    Args:
        word: the children word ``w`` (labels, function names, ``#data``).
        output_types: ``tau_out`` for every function that *may* be
            invoked; symbols without an entry are plain letters.
        k: the depth bound of Definition 7.
        invocable: the legality filter of Section 2.1 — functions failing
            it keep their edges unexpanded even when a signature is known.
        compile_cache: explicit compilation cache; None uses the ambient
            one (:func:`repro.compile.context.cache`).
    """
    if k < 0:
        raise ValueError("k must be non-negative")
    can_invoke = invocable or (lambda _name: True)
    cc = compile_cache if compile_cache is not None else compile_context.cache()
    # The filter is only ever consulted for names with a known signature,
    # so the frozen partition below is an exact stand-in for the callable.
    invocable_names = frozenset(
        name for name in output_types if can_invoke(name)
    )
    if not cc.enabled:
        return _build_expansion(word, output_types, k, invocable_names, cc)
    key = cc.expansion_key(tuple(word), output_types, k, invocable_names)
    return cc.expansion(
        key,
        lambda: _build_expansion(word, output_types, k, invocable_names, cc),
    )


def _build_expansion(
    word: Sequence[str],
    output_types: Dict[str, Regex],
    k: int,
    invocable_names: frozenset,
    cc,
) -> Expansion:
    expansion = Expansion(
        word=tuple(word),
        k=k,
        n_states=len(word) + 1,
        initial=0,
        final=len(word),
    )

    def add_edge(
        source: int,
        target: int,
        guard: Optional[SymbolClass],
        kind: str,
        depth: int,
        copy: Optional[int] = None,
    ) -> Edge:
        edge = Edge(len(expansion.edges), source, target, guard, kind, depth, copy)
        expansion.edges.append(edge)
        expansion.out.setdefault(source, []).append(edge.eid)
        return edge

    # Base: the linear automaton accepting w as a single word (step 2).
    untreated: List[Edge] = []
    for index, symbol in enumerate(word):
        edge = add_edge(index, index + 1, symbol, "symbol", 0)
        untreated.append(edge)

    # k expansion rounds (steps 6-10).
    for round_number in range(1, k + 1):
        current, untreated = untreated, []
        for edge in current:
            name = edge.guard
            if not isinstance(name, str):
                continue
            output_type = output_types.get(name)
            if output_type is None or name not in invocable_names:
                continue
            new_edges = _attach_copy(
                expansion, add_edge, edge, output_type, round_number, cc
            )
            untreated.extend(new_edges)
        if not untreated:
            break

    return expansion


def _attach_copy(
    expansion: Expansion,
    add_edge,
    call_edge: Edge,
    output_type: Regex,
    depth: int,
    cc,
) -> List[Edge]:
    """Attach a copy of ``A_f`` in parallel with a function edge (step 8).

    Returns the copy's freshly created symbol edges, which become the
    next round's untreated edges.
    """
    nfa = cc.nfa(output_type)
    offset = expansion.n_states
    expansion.n_states += nfa.n_states
    cid = len(expansion.copies)

    # The invoke option: an epsilon edge from the fork node into the copy.
    invoke = add_edge(
        call_edge.source, nfa.initial + offset, None, "invoke", depth, cid
    )
    call_edge.invoke_edge = invoke.eid

    new_symbol_edges: List[Edge] = []
    for state in range(nfa.n_states):
        for guard, target in nfa.edges_from(state):
            edge = add_edge(
                state + offset, target + offset, guard, "symbol", depth, cid
            )
            new_symbol_edges.append(edge)

    # Return edges: from the copy's accepting states back to the
    # continuation of the original word.
    return_edges: Dict[int, int] = {}
    accepting = tuple(sorted(s + offset for s in nfa.accepting))
    for state in accepting:
        edge = add_edge(state, call_edge.target, None, "return", depth, cid)
        return_edges[state] = edge.eid

    expansion.copies[cid] = CopyInfo(
        cid=cid,
        function=str(call_edge.guard),
        depth=depth,
        entry=nfa.initial + offset,
        accepting=accepting,
        return_edges=return_edges,
        call_edge=call_edge.eid,
    )
    return new_symbol_edges
