"""The paper's core contribution: safe and possible rewriting.

Word-level algorithms (Sections 4-5):

- :mod:`repro.rewriting.expansion` builds ``A_w^k``, the automaton of all
  words a k-depth left-to-right rewriting can produce from ``w``
  (Figure 3, steps 5-10), with *fork* bookkeeping: at every invocable
  function edge the rewriter may either keep the call or replace it by a
  word of its output type;
- :mod:`repro.rewriting.safe` solves the safe-rewriting marking game on
  the product of ``A_w^k`` with the complete complement of the target
  (Figure 3, steps 11-23);
- :mod:`repro.rewriting.lazy` is the optimized variant of Section 7:
  on-demand product construction with sink-node and marked-node pruning
  (Figure 12);
- :mod:`repro.rewriting.possible` solves possible rewriting on the
  product with the target itself and executes with backtracking
  (Figure 9);
- :mod:`repro.rewriting.mixed` implements the mixed approach of
  Section 5: invoke cheap side-effect-free calls first, then decide
  safety with the (much smaller) actual outputs.

Document-level driver (Section 4's three stages — parameters bottom-up,
tree top-down, one children word at a time): :mod:`repro.rewriting.engine`.
"""

from repro.rewriting.expansion import Expansion, build_expansion
from repro.rewriting.safe import SafeAnalysis, analyze_safe, execute_safe
from repro.rewriting.possible import PossibleAnalysis, analyze_possible, execute_possible
from repro.rewriting.lazy import analyze_safe_lazy
from repro.rewriting.plan import Decision, InvocationLog, InvocationRecord
from repro.rewriting.engine import RewriteEngine, RewriteResult
from repro.rewriting.cost import CostModel
from repro.rewriting.mixed import mixed_rewrite_word
from repro.rewriting.optimal import execute_safe_optimal, strategy_values
from repro.rewriting.direction import (
    analyze_safe_directed,
    execute_safe_directed,
    safe_in_some_direction,
)
from repro.rewriting.converters import (
    Converter,
    DropElement,
    MapData,
    RenameLabel,
    Unwrap,
    Wrap,
    convert_document,
    convert_forest,
)

__all__ = [
    "Expansion",
    "build_expansion",
    "SafeAnalysis",
    "analyze_safe",
    "analyze_safe_lazy",
    "execute_safe",
    "PossibleAnalysis",
    "analyze_possible",
    "execute_possible",
    "Decision",
    "InvocationLog",
    "InvocationRecord",
    "RewriteEngine",
    "RewriteResult",
    "CostModel",
    "mixed_rewrite_word",
    "execute_safe_optimal",
    "strategy_values",
    "analyze_safe_directed",
    "execute_safe_directed",
    "safe_in_some_direction",
    "Converter",
    "RenameLabel",
    "MapData",
    "Unwrap",
    "Wrap",
    "DropElement",
    "convert_document",
    "convert_forest",
]
