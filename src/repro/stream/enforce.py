"""Single-pass streaming enforcement: rewrite children words as
elements close, emit enforced output while the tail is still parsing.

The driver subclasses :class:`repro.stream.builder.TreeBuilder`.  At
each element close (outside ``int:fun`` subtrees) it runs the engine's
:meth:`~repro.rewriting.engine.RewriteEngine.rewrite_forest` over the
element's children — exactly the computation the DOM driver performs
for the same node, with the same analysis-cache keys and the same
error messages — then *seals* the element: the subtree is final and its
serialized chunk travels upward instead of the tree.  The engine's
descend stage skips sealed children (``node.enforced``), so each word
is rewritten exactly once, as in the DOM pass.

Memory: the driver holds the root-to-cursor spine of open frames plus
one children list per frame.  Children whose bytes have been emitted
are *hollowed* to their label; only subtrees buffered behind a pending
function call (whose expansion is unknown until the parent's word is
rewritten) stay resident.  Peak memory is O(depth + buffered siblings)
instead of O(document).

Emission: an element's start tag is written as soon as its final print
form is certain (any open child element, or ≥2 settled children, or one
settled non-text child force the multi-line form); settled children
stream out up to the first pending function call.  The accumulated
output is byte-identical to ``document_to_xml`` of the DOM result.

Guarantees and caveats (see ``docs/STREAMING.md``):

- ``safe`` and ``auto`` modes only.  Possible-mode execution may invoke
  services on already-conformant words, which would diverge from the
  DOM path's conformance short-circuit.
- On success, output bytes and receipts match the DOM path exactly
  (given a per-call-deterministic invoker).  On documents with several
  independent errors, the two paths may report a different error first
  (post-order close time versus top-down descend order), and partial
  output may already have been emitted when the error surfaces —
  callers must discard the sink's contents on error.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple
from xml.sax.saxutils import escape

from repro.doc.nodes import (
    Element,
    FunctionCall,
    Node,
    Text,
    symbol_of,
    with_children,
)
from repro.doc.xml_io import _declare_int_ns
from repro.errors import RewriteError, SchemaError
from repro.obs import context as obs
from repro.regex.ast import Regex
from repro.rewriting.engine import POSSIBLE, SAFE, RewriteEngine
from repro.rewriting.plan import InvocationLog
from repro.schema.validate import validate, word_matches
from repro.stream.builder import Frame, TreeBuilder
from repro.stream.parser import iter_events
from repro.stream.seal import SealedElement
from repro.stream.serialize import (
    XML_HEADER,
    LineWriter,
    attr_string,
    chunk_of,
    serialize_lines,
)


@dataclass
class StreamResult:
    """What one streaming rewrite did (the engine-level receipt)."""

    log: InvocationLog
    mode_used: str
    words_rewritten: int = 0
    product_nodes: int = 0
    degraded_functions: Tuple[str, ...] = ()
    cache_hits: int = 0
    cache_misses: int = 0
    #: Whether the *original* document was already an instance of the
    #: target schema (tracked incrementally, mirroring ``is_instance``).
    already_conformant: bool = True
    #: Peak open-frame depth and peak buffered-sibling count observed.
    peak_depth: int = 0
    peak_buffered: int = 0

    @property
    def calls_made(self) -> int:
        return len(self.log)


class _EmitState:
    """Per-open-frame emission bookkeeping."""

    __slots__ = ("depth", "writable", "start_emitted", "flushed")

    def __init__(self, depth: int, writable: bool):
        self.depth = depth
        self.writable = writable
        self.start_emitted = False
        self.flushed = 0  # children fully written to the sink


class _StreamDriver(TreeBuilder):
    """TreeBuilder subclass running close-time enforcement + emission."""

    def __init__(
        self, engine: RewriteEngine, invoker, write: Callable[[str], None]
    ):
        super().__init__()
        self.engine = engine
        self.invoker = invoker
        self.log = InvocationLog()
        self.stats = {"words": 0, "product": 0, "mode": SAFE}
        self.writer = LineWriter(write)
        self.states: List[_EmitState] = []
        self.conformant = True
        self.peak_depth = 0
        self.peak_buffered = 0
        self._just_streamed = False  # last closed child's bytes already out

    # -- conformance tracking (mirrors schema.validate, incrementally) -----

    def _check_word_conformance(
        self, word: Tuple[str, ...], content: Regex
    ) -> None:
        if not self.conformant:
            return
        if not word_matches(
            word, content, self.engine.target_schema, self.engine.sender_schema
        ):
            self.conformant = False

    def _check_call_conformance(self, node: FunctionCall) -> None:
        if not self.conformant:
            return
        report = validate(
            node, self.engine.target_schema, self.engine.sender_schema
        )
        if not report.ok:
            self.conformant = False

    # -- TreeBuilder hooks -------------------------------------------------

    def enter_element(self, frame: Frame) -> None:
        parent_state = self.states[-1] if self.states else None
        if parent_state is not None and parent_state.writable:
            if not parent_state.start_emitted:
                # An open child element guarantees the multi-line form.
                self._emit_start(parent_state, self._stack[-2])
            self._flush_prefix(parent_state, self._stack[-2])
        writable = parent_state is None or (
            parent_state.writable
            and parent_state.start_emitted
            and parent_state.flushed == len(self._stack[-2].children)
        )
        self.states.append(_EmitState(len(self.states), writable))
        if self.depth > self.peak_depth:
            self.peak_depth = self.depth

    def close_element(
        self, frame: Frame, attributes: Tuple[Tuple[str, str], ...]
    ) -> Node:
        state = self.states.pop()
        engine = self.engine
        content = engine.target_schema.type_of(frame.label)
        if content is None:
            raise SchemaError(
                "element label %r is not declared by the target schema"
                % frame.label
            )
        word = tuple(symbol_of(child) for child in frame.children)
        self._check_word_conformance(word, content)
        rewritten = engine.rewrite_forest(
            frame.children, content, self.invoker, self.log, self.stats
        )
        new_word = tuple(symbol_of(child) for child in rewritten)
        if not word_matches(
            new_word, content, engine.target_schema, engine.sender_schema
        ):
            raise RewriteError(
                "rewriting produced a non-conformant document: "
                "children word %s does not match %s"
                % (".".join(new_word) or "eps", content)
            )
        pad = "  " * state.depth
        if state.start_emitted:
            for child in rewritten[state.flushed:]:
                self._emit_child(child, state.depth + 1)
            self.writer.line("%s</%s>" % (pad, frame.label))
            self._just_streamed = True
            return SealedElement(frame.label, (), attributes, None)
        chunk = self._assemble_chunk(frame.label, attributes, rewritten, state.depth)
        return SealedElement(frame.label, (), attributes, chunk)

    def child_closed(self, node: Node) -> None:
        if isinstance(node, FunctionCall):
            self._check_call_conformance(node)
        if not self.states:
            self._finish_root(node)
            return
        state = self.states[-1]
        frame = self._stack[-1]
        if self._just_streamed:
            # close_element wrote the child's bytes itself; skip it here.
            self._just_streamed = False
            state.flushed = len(frame.children)
            return
        buffered = len(frame.children) - state.flushed
        if buffered > self.peak_buffered:
            self.peak_buffered = buffered
        self._pump(state, frame)

    # -- emission ----------------------------------------------------------

    def _pump(self, state: _EmitState, frame: Frame) -> None:
        if not state.writable:
            return
        if not state.start_emitted:
            settled = 0
            for child in frame.children:
                if isinstance(child, FunctionCall):
                    break
                settled += 1
            if settled >= 2 or (
                settled == 1 and not isinstance(frame.children[0], Text)
            ):
                self._emit_start(state, frame)
            else:
                return
        self._flush_prefix(state, frame)

    def _emit_start(self, state: _EmitState, frame: Frame) -> None:
        attributes = tuple(sorted(frame.attrs.items()))
        line = "%s<%s%s>" % (
            "  " * state.depth, frame.label, attr_string(attributes)
        )
        if state.depth == 0:
            self.writer.line(XML_HEADER)
            line = _declare_int_ns(line)
        self.writer.line(line)
        state.start_emitted = True

    def _flush_prefix(self, state: _EmitState, frame: Frame) -> None:
        if not state.start_emitted:
            return
        children = frame.children
        while state.flushed < len(children):
            child = children[state.flushed]
            if isinstance(child, FunctionCall):
                break  # expansion unknown until this frame's word rewrites
            self._emit_child(child, state.depth + 1)
            if isinstance(child, SealedElement) and child.chunk is not None:
                children[state.flushed] = child.hollow()
            state.flushed += 1

    def _emit_child(self, child: Node, depth: int) -> None:
        chunk = getattr(child, "chunk", None)
        if chunk is not None:
            self.writer.line(chunk)
            return
        for line in serialize_lines(child, depth):
            self.writer.line(line)

    def _assemble_chunk(
        self,
        label: str,
        attributes: Tuple[Tuple[str, str], ...],
        children: Tuple[Node, ...],
        depth: int,
    ) -> str:
        pad = "  " * depth
        attrs = attr_string(attributes)
        if not children:
            return "%s<%s%s/>" % (pad, label, attrs)
        if len(children) == 1 and isinstance(children[0], Text):
            return "%s<%s%s>%s</%s>" % (
                pad, label, attrs, escape(children[0].value), label
            )
        parts = ["%s<%s%s>" % (pad, label, attrs)]
        for child in children:
            parts.append(chunk_of(child, depth + 1))
        parts.append("%s</%s>" % (pad, label))
        return "\n".join(parts)

    # -- root --------------------------------------------------------------

    def _finish_root(self, node: Node) -> None:
        if isinstance(node, FunctionCall):
            # Mirrors the engine's root FunctionCall branch: parameters
            # are rewritten toward the input type, the call itself stays.
            input_type = self.engine._input_type(node.name)
            if input_type is None:
                raise SchemaError(
                    "function %r has no declared signature in either schema"
                    % node.name
                )
            params = self.engine.rewrite_forest(
                node.params, input_type, self.invoker, self.log, self.stats
            )
            final = with_children(node, params)
            self.writer.line(XML_HEADER)
            self.writer.line(
                _declare_int_ns("\n".join(serialize_lines(final, 0)))
            )
            return
        chunk = getattr(node, "chunk", None)
        if chunk is not None:  # root sealed whole: never streamed early
            self.writer.line(XML_HEADER)
            self.writer.line(_declare_int_ns(chunk))
        self._just_streamed = False


def stream_rewrite(
    engine: RewriteEngine,
    source,
    invoker,
    write: Callable[[str], None],
) -> StreamResult:
    """Enforce one document from an XML source, streaming the output.

    ``source`` is a string, bytes, or an iterable of chunks; ``write``
    receives the serialized output incrementally (its concatenation is
    byte-identical to ``document_to_xml`` of the DOM rewrite).  Raises
    the same errors as :meth:`RewriteEngine.rewrite`
    (:class:`DocumentParseError` for malformed input, rewrite/schema
    errors when the guarantee cannot be met); on error the sink holds a
    partial prefix that must be discarded.
    """
    if engine.mode == POSSIBLE:
        raise ValueError(
            "streaming enforcement supports safe/auto modes only: "
            "possible-mode execution may invoke services on conformant "
            "words, diverging from the DOM path"
        )
    driver = _StreamDriver(engine, invoker, write)
    hits_before, misses_before = engine.cache_stats
    with obs.tracer().span(
        "document", mode=engine.mode, k=engine.k, stream=True
    ) as span:
        for event in iter_events(source):
            driver.feed(event)
        driver.finish()
        hits, misses = engine.cache_stats
        result = StreamResult(
            log=driver.log,
            mode_used=driver.stats["mode"],
            words_rewritten=driver.stats["words"],
            product_nodes=driver.stats["product"],
            degraded_functions=tuple(sorted(driver.stats.get("dead", ()))),
            cache_hits=hits - hits_before,
            cache_misses=misses - misses_before,
            already_conformant=driver.conformant,
            peak_depth=driver.peak_depth,
            peak_buffered=driver.peak_buffered,
        )
        span.set(
            mode_used=result.mode_used,
            words=result.words_rewritten,
            calls=result.calls_made,
            conformant=result.already_conformant,
        )
    metrics = obs.metrics()
    if metrics.enabled:
        metrics.counter(
            "repro_documents_rewritten_total", "Documents rewritten"
        ).inc(mode=result.mode_used)
    return result
