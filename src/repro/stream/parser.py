"""Event-based pull parsing over ``xml.parsers.expat``.

:func:`iter_events` turns an XML source — a string, bytes, or an
iterable of chunks — into a flat stream of ``(kind, value, attrs)``
events, holding only expat's internal buffers plus the text currently
being coalesced.  The namespace handling mirrors
:mod:`xml.etree.ElementTree` exactly (same expat configuration, same
Clark-notation ``{uri}local`` names, same error strings), so documents
accepted or rejected by the DOM path behave identically here.

Adjacent character data — split by expat buffering, comments, or CDATA
section boundaries — is coalesced into a single ``text`` event, matching
the ``.text`` / ``.tail`` coalescing of the ElementTree builder.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple, Union
from xml.parsers import expat

from repro.automata.symbols import intern_symbol
from repro.errors import DocumentParseError

#: Event kinds.
START = "start"
TEXT = "text"
END = "end"

Event = Tuple[str, str, Optional[dict]]
Source = Union[str, bytes, Iterator[Union[str, bytes]]]


def _clark(name: str) -> str:
    """``uri}local`` (expat with ``}`` separator) → ``{uri}local``."""
    return intern_symbol("{" + name if "}" in name else name)


def iter_events(source: Source) -> Iterator[Event]:
    """Yield ``(kind, value, attrs)`` events for one XML document.

    ``kind`` is :data:`START` (value = Clark tag, attrs = dict),
    :data:`TEXT` (value = coalesced character data, attrs None) or
    :data:`END` (value = Clark tag, attrs None).  Malformed input
    raises :class:`DocumentParseError` with the same message the DOM
    parser produces for the same document.
    """
    if isinstance(source, (str, bytes)):
        chunks: Iterator[Union[str, bytes]] = iter((source,))
    else:
        chunks = iter(source)

    parser = expat.ParserCreate(None, "}")
    parser.buffer_text = True

    events: list = []
    text_parts: list = []

    def flush_text() -> None:
        if text_parts:
            events.append((TEXT, "".join(text_parts), None))
            text_parts.clear()

    def handle_start(tag: str, attrs: dict) -> None:
        flush_text()
        events.append(
            (START, _clark(tag), {_clark(k): v for k, v in attrs.items()})
        )

    def handle_end(tag: str) -> None:
        flush_text()
        events.append((END, _clark(tag), None))

    parser.StartElementHandler = handle_start
    parser.EndElementHandler = handle_end
    parser.CharacterDataHandler = text_parts.append

    try:
        for chunk in chunks:
            parser.Parse(chunk, False)
            if events:
                yield from events
                events.clear()
        parser.Parse(b"", True)
    except expat.ExpatError as exc:
        raise DocumentParseError("malformed XML: %s" % exc) from exc
    if events:
        yield from events
