"""E27 — streaming enforcement: bounded memory at DOM-identical bytes.

A magazine document (``magazine = article*``, every article carrying a
``Get_Temp`` that must be materialized) is enforced twice at each of
three sizes:

- **dom** — the classic path: parse the whole tree, rewrite it, then
  serialize the result (peak memory grows with the document);
- **stream** — :func:`repro.stream.enforce.stream_rewrite`: the input
  arrives in bounded chunks, children words are rewritten as elements
  close, output bytes leave through a hashing sink that retains nothing
  (peak memory tracks depth + one article, not the document).

Receipts and output bytes must be identical (``receipts_identical``),
and the streaming path's tracemalloc peak must grow sub-linearly while
the input quadruples (``peak_sublinear``) — the two deterministic
acceptance booleans CI diffs.  Wall-clock figures and every ``*_bytes``
measurement are stripped from regression comparisons.
"""

from __future__ import annotations

import hashlib
import time
from typing import Dict, List, Tuple

from repro.axml.enforcement import SchemaEnforcer
from repro.compile.cache import CompilationCache
from repro.doc.builder import call, el, text
from repro.doc.document import Document
from repro.doc.nodes import FunctionCall
from repro.obs.context import observing
from repro.obs.memory import peak_rss_bytes, traced_peak
from repro.obs.metrics import MetricsRegistry, work_snapshot
from repro.obs.trace import NULL_TRACER
from repro.schema.model import Schema, SchemaBuilder
from repro.workloads.newspaper import (
    FORECAST_ENDPOINT,
    FORECAST_NS,
    TIMEOUT_ENDPOINT,
    TIMEOUT_NS,
)


def _schemas() -> Tuple[Schema, Schema]:
    """(sender, receiver): the newspaper pair lifted under ``article*``."""

    def base() -> SchemaBuilder:
        return (
            SchemaBuilder()
            .element("title", "data")
            .element("date", "data")
            .element("temp", "data")
            .element("city", "data")
            .element("exhibit", "title.date")
            .function("Get_Temp", "city", "temp")
            .function("TimeOut", "data", "exhibit*")
            .root("magazine")
        )

    sender = (
        base()
        .element("magazine", "article*")
        .element(
            "article", "title.date.(Get_Temp | temp).(TimeOut | exhibit*)"
        )
        .build()
    )
    receiver = (
        base()
        .element("magazine", "article*")
        .element("article", "title.date.temp.(TimeOut | exhibit*)")
        .build()
    )
    return sender, receiver


def _article(index: int):
    return el(
        "article",
        el("title", "article-%d" % index),
        el("date", "04/10/2002"),
        call(
            "Get_Temp",
            el("city", "city-%d" % index),
            endpoint=FORECAST_ENDPOINT,
            namespace=FORECAST_NS,
        ),
        call(
            "TimeOut",
            text("exhibits-%d" % index),
            endpoint=TIMEOUT_ENDPOINT,
            namespace=TIMEOUT_NS,
        ),
    )


def _magazine(articles: int) -> Document:
    return Document(el("magazine", *[_article(i) for i in range(articles)]))


def _invoker(fc: FunctionCall):
    """Pure function of the call — both paths see identical services."""
    if fc.name == "Get_Temp":
        seed = fc.params[0].children[0].value if fc.params else "?"
        return (el("temp", "%d" % (sum(ord(c) for c in seed) % 40)),)
    if fc.name == "TimeOut":
        return (el("exhibit", el("title", "P"), el("date", "d")),)
    raise ValueError("unexpected call %r" % fc.name)


def _chunks(xml: str, size: int = 1 << 14) -> List[str]:
    return [xml[i:i + size] for i in range(0, len(xml), size)]


class _HashSink:
    """A write sink retaining a digest and a byte count, never the bytes."""

    __slots__ = ("digest", "length")

    def __init__(self):
        self.digest = hashlib.sha256()
        self.length = 0

    def write(self, chunk: str) -> None:
        data = chunk.encode("utf-8")
        self.digest.update(data)
        self.length += len(data)


def _enforcer(receiver: Schema, sender: Schema,
              compile_cache: CompilationCache) -> SchemaEnforcer:
    return SchemaEnforcer(
        target_schema=receiver, sender_schema=sender,
        k=1, mode="safe", compile_cache=compile_cache,
    )


def _receipt(outcome) -> Tuple:
    return (
        outcome.ok, outcome.already_conformant, outcome.calls_made,
        outcome.cache_hits, outcome.cache_misses,
        outcome.degraded_functions,
    )


def _run_size(articles: int, receiver: Schema, sender: Schema,
              compile_cache: CompilationCache) -> Dict[str, object]:
    xml = _magazine(articles).to_xml()
    chunks = _chunks(xml)

    def dom_pass():
        enforcer = _enforcer(receiver, sender, compile_cache)
        outcome = enforcer.enforce_document(
            Document.from_xml(xml), _invoker
        )
        return outcome, outcome.document.to_xml()

    def stream_pass():
        enforcer = _enforcer(receiver, sender, compile_cache)
        sink = _HashSink()
        outcome = enforcer.enforce_stream(chunks, _invoker, sink.write)
        return outcome, sink

    started = time.perf_counter()
    dom_outcome, dom_xml = dom_pass()
    dom_seconds = time.perf_counter() - started

    started = time.perf_counter()
    stream_outcome, sink = stream_pass()
    stream_seconds = time.perf_counter() - started

    (_, _), dom_peak = traced_peak(dom_pass)
    (_, _), stream_peak = traced_peak(stream_pass)

    dom_digest = hashlib.sha256(dom_xml.encode("utf-8")).hexdigest()
    identical = (
        dom_digest == sink.digest.hexdigest()
        and len(dom_xml.encode("utf-8")) == sink.length
        and _receipt(dom_outcome) == _receipt(stream_outcome)
    )
    megabytes = len(xml.encode("utf-8")) / (1024.0 * 1024.0)
    return {
        "articles": articles,
        "input_bytes": len(xml.encode("utf-8")),
        "output_bytes": sink.length,
        "calls_made": stream_outcome.calls_made,
        "receipts_identical": identical,
        "dom_seconds": round(dom_seconds, 6),
        "stream_seconds": round(stream_seconds, 6),
        "dom_throughput_mb_per_s": round(dom_seconds and megabytes / dom_seconds, 3),
        "stream_throughput_mb_per_s": round(
            stream_seconds and megabytes / stream_seconds, 3
        ),
        "dom_tracemalloc_peak_bytes": dom_peak,
        "stream_tracemalloc_peak_bytes": stream_peak,
    }


def run_stream_enforce(smoke: bool = False) -> dict:
    """The E27 payload (``BENCH_stream_enforce.json``)."""
    sizes = (20, 40, 80) if smoke else (100, 200, 400)
    sender, receiver = _schemas()
    compile_cache = CompilationCache()  # warm automata across both paths
    registry = MetricsRegistry()
    with observing(NULL_TRACER, registry):
        runs = [
            _run_size(articles, receiver, sender, compile_cache)
            for articles in sizes
        ]
    smallest, largest = runs[0], runs[-1]
    input_growth = largest["input_bytes"] / max(smallest["input_bytes"], 1)
    dom_growth = (
        largest["dom_tracemalloc_peak_bytes"]
        / max(smallest["dom_tracemalloc_peak_bytes"], 1)
    )
    stream_growth = (
        largest["stream_tracemalloc_peak_bytes"]
        / max(smallest["stream_tracemalloc_peak_bytes"], 1)
    )
    return {
        "benchmark": "stream_enforce",
        "experiment": "E27",
        "hot_path": "single-pass SAX enforcement (close-time word "
                    "rewriting + incremental emission through a hashing "
                    "sink) vs parse-rewrite-serialize over the same bytes",
        "sizes": runs,
        "receipts_identical": all(r["receipts_identical"] for r in runs),
        # Sub-linear memory: the DOM peak tracks the input (the whole
        # tree is live at once); the streaming peak must grow at most
        # 2/3 as fast.  It cannot be flat on THIS document shape: the
        # magazine grows by adding root children, so the root's children
        # word, its spine of hollowed sealed elements, and the receipt
        # log (one entry per call, two calls per article) all grow with
        # the article count — O(depth + fanout + calls), never O(tree).
        "peak_sublinear": stream_growth < input_growth / 1.5,
        "input_growth_fraction": round(input_growth, 2),
        "dom_peak_growth_fraction": round(dom_growth, 2),
        "stream_peak_growth_fraction": round(stream_growth, 2),
        "peak_rss_bytes": peak_rss_bytes(),
        "work": {"default": work_snapshot(registry)},
    }
