"""Streaming document pipeline: bounded-memory parse, enforce, emit.

The package replaces the recursive DOM-first path of
:mod:`repro.doc.xml_io` with an event-based pull parser over
``xml.parsers.expat`` (:mod:`repro.stream.parser`), a simple-model tree
builder with a per-element reduction hook (:mod:`repro.stream.builder`),
and a single-pass enforcement driver that rewrites children words as
elements close and emits enforced output while the tail of the input is
still being parsed (:mod:`repro.stream.enforce`).  See
``docs/STREAMING.md`` for the memory model and the event contract.
"""

from repro.stream.builder import TreeBuilder, build_node
from repro.stream.enforce import StreamResult, stream_rewrite
from repro.stream.parser import iter_events
from repro.stream.seal import SealedElement

__all__ = [
    "TreeBuilder",
    "build_node",
    "StreamResult",
    "stream_rewrite",
    "iter_events",
    "SealedElement",
]
