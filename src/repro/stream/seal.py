"""Sealed nodes: already-enforced subtrees flowing through the engine.

A :class:`SealedElement` is produced by the streaming driver when an
element closes: its children word has been rewritten and its serialized
form (the *chunk*) is final.  Sealing carries two facts through the
surrounding rewrite:

- ``enforced = True`` — the engine's descend stage skips the subtree
  (it was enforced at close time; re-descending would redo the work and
  double-count cache lookups);
- ``chunk`` — the pretty-printed lines of the subtree at its absolute
  depth, reused verbatim when the parent emits, so serialization work
  is O(1) per already-sealed child.

A sealed element whose bytes have already been written upstream is
*hollow* (``chunk is None``, no children): only its label remains, which
is all the parent's children word needs.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.doc.nodes import Element, Node


class SealedElement(Element):
    """An element whose subtree is already enforced (and serialized)."""

    __slots__ = ("chunk",)

    enforced = True

    def __init__(
        self,
        label: str,
        children: Tuple[Node, ...] = (),
        attributes: Tuple[Tuple[str, str], ...] = (),
        chunk: Optional[str] = None,
    ):
        super().__init__(label, children, attributes)
        object.__setattr__(self, "chunk", chunk)

    def __eq__(self, other):
        if isinstance(other, Element):
            return (self.label, self.children, self.attributes) == (
                other.label, other.children, other.attributes,
            )
        return NotImplemented

    __hash__ = Element.__hash__

    def hollow(self) -> "SealedElement":
        """Drop the chunk and children once the bytes are written."""
        return SealedElement(self.label, (), self.attributes, None)
