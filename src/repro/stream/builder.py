"""Event-driven construction of simple-model document trees.

Two layers, both iterative (no recursion, so ≥10k-deep documents no
longer exhaust the interpreter stack):

- :func:`raw_tree` + :func:`parse_raw` — the DOM-equivalent path.  The
  raw tree captures exactly what :mod:`xml.etree.ElementTree` would hand
  the old recursive parser (tags, attributes, leading text, tails), and
  :func:`parse_raw` replays the old parser's checks in the *same
  depth-first walk order*, producing byte-identical error messages.
  :func:`repro.doc.xml_io.node_from_xml` is built on this pair.

- :class:`TreeBuilder` — the streaming state machine.  It holds only
  the root-to-cursor spine of open element frames; subclasses hook
  element open/close to run per-word enforcement as elements close
  (:mod:`repro.stream.enforce`).  Content inside ``int:fun`` subtrees
  is captured raw and converted with :func:`parse_raw` when the
  function element closes, so parameters are built exactly as the DOM
  path builds them (including its quirks: text directly under
  ``int:fun`` / ``int:params`` is ignored, and only the leading text of
  an ``int:param`` participates in the mixed-content check).

The streaming machine raises the same *messages* as the DOM walk but
checks eagerly (at the event that proves the violation), so on a
document with several independent errors the two paths may report a
different one first — see ``docs/STREAMING.md``.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from repro.doc.names import FUN_TAG, PARAM_TAG, PARAMS_TAG
from repro.doc.nodes import Element, FunctionCall, Node, Text
from repro.errors import DocumentParseError
from repro.stream.parser import END, START, TEXT, Event, iter_events

_MIXED = "mixed content under <%s> is not part of the simple model"


class RawNode:
    """One captured element: what ElementTree would have built for it."""

    __slots__ = ("tag", "attrs", "children", "text_parts", "tail_parts")

    def __init__(self, tag: str, attrs: dict):
        self.tag = tag
        self.attrs = attrs
        self.children: List["RawNode"] = []
        self.text_parts: List[str] = []
        self.tail_parts: List[str] = []

    @property
    def text(self) -> str:
        return "".join(self.text_parts)

    @property
    def tail(self) -> str:
        return "".join(self.tail_parts)


def raw_tree(events: Iterable[Event]) -> RawNode:
    """Assemble the raw element tree of one document, iteratively."""
    root: Optional[RawNode] = None
    stack: List[RawNode] = []
    for kind, value, attrs in events:
        if kind == START:
            raw = RawNode(value, dict(attrs))
            if stack:
                stack[-1].children.append(raw)
            elif root is None:
                root = raw
            stack.append(raw)
        elif kind == TEXT:
            if not stack:
                continue  # prolog / epilog whitespace
            top = stack[-1]
            if top.children:
                top.children[-1].tail_parts.append(value)
            else:
                top.text_parts.append(value)
        else:
            stack.pop()
    if root is None:
        raise DocumentParseError("malformed XML: no element found")
    return root


def _check_attributes(raw_tag: str, attrs: dict) -> Tuple[Tuple[str, str], ...]:
    attributes = tuple(sorted(attrs.items()))
    for name, _value in attributes:
        if name.startswith("{"):
            raise DocumentParseError(
                "namespaced attribute %r is not supported" % name
            )
    return attributes


def parse_raw(raw: RawNode) -> Node:
    """Convert a raw tree to a document node, DOM-parser semantics.

    The explicit task stack replays the recursive parser's depth-first
    walk, so every check fires in the same order with the same message.
    """
    result: List[Node] = []
    stack: list = [("elem", raw, result)]
    while stack:
        task = stack.pop()
        op = task[0]
        if op == "elem":
            _, node, slot = task
            if node.tag == FUN_TAG:
                name = node.attrs.get("methodName")
                if not name:
                    raise DocumentParseError(
                        "int:fun requires a methodName attribute"
                    )
                wrappers = [c for c in node.children if c.tag == PARAMS_TAG]
                others = [c for c in node.children if c.tag != PARAMS_TAG]
                if others:
                    raise DocumentParseError(
                        "int:fun may only contain int:params, found %r"
                        % others[0].tag
                    )
                if len(wrappers) > 1:
                    raise DocumentParseError(
                        "int:fun may contain at most one int:params"
                    )
                fun_slot: List[Node] = []
                stack.append(("exit-fun", node, slot, fun_slot))
                for wrapper in reversed(wrappers):
                    for param in reversed(wrapper.children):
                        stack.append(("param", param, fun_slot))
                continue
            if node.tag in (PARAMS_TAG, PARAM_TAG):
                raise DocumentParseError(
                    "%s may only appear directly under int:fun" % node.tag
                )
            if node.tag.startswith("{"):
                raise DocumentParseError(
                    "unsupported namespaced element %r" % node.tag
                )
            leading = node.text.strip()
            if leading and node.children:
                raise DocumentParseError(_MIXED % node.tag)
            my_slot: List[Node] = [Text(leading)] if leading else []
            stack.append(("exit-elem", node, slot, my_slot))
            for child in reversed(node.children):
                stack.append(("tail", node.tag, child))
                stack.append(("elem", child, my_slot))
        elif op == "tail":
            _, tag, child = task
            if child.tail.strip():
                raise DocumentParseError(_MIXED % tag)
        elif op == "exit-elem":
            _, node, slot, my_slot = task
            attributes = _check_attributes(node.tag, node.attrs)
            slot.append(Element(node.tag, tuple(my_slot), attributes))
        elif op == "param":
            _, param, fun_slot = task
            if param.tag != PARAM_TAG:
                raise DocumentParseError(
                    "int:params may only contain int:param, found %r"
                    % param.tag
                )
            inner_text = param.text.strip()
            if param.children and inner_text:
                raise DocumentParseError("mixed content inside int:param")
            if len(param.children) > 1:
                raise DocumentParseError(
                    "int:param must wrap exactly one tree (found %d)"
                    % len(param.children)
                )
            if param.children:
                stack.append(("elem", param.children[0], fun_slot))
            else:
                fun_slot.append(Text(inner_text))
        else:  # exit-fun
            _, node, slot, fun_slot = task
            slot.append(
                FunctionCall(
                    node.attrs["methodName"],
                    tuple(fun_slot),
                    endpoint=node.attrs.get("endpointURL"),
                    namespace=node.attrs.get("namespaceURI"),
                )
            )
    return result[0]


class Frame:
    """One open element on the streaming builder's spine."""

    __slots__ = ("label", "attrs", "children", "text_parts")

    def __init__(self, label: str, attrs: dict):
        self.label = label
        self.attrs = attrs
        self.children: List[Node] = []
        self.text_parts: List[str] = []


class TreeBuilder:
    """Streaming simple-model builder with per-element close hooks.

    Feed it the events of :func:`repro.stream.parser.iter_events`; it
    keeps one :class:`Frame` per open element.  Subclasses override
    :meth:`enter_element`, :meth:`close_element` and
    :meth:`child_closed` — the enforcement driver rewrites each frame's
    children word inside :meth:`close_element`.
    """

    def __init__(self):
        self._stack: List[Frame] = []
        self._raw_stack: List[RawNode] = []
        self._result: Optional[Node] = None

    # -- hooks -------------------------------------------------------------

    def enter_element(self, frame: Frame) -> None:
        """Called right after an element frame is opened."""

    def close_element(
        self, frame: Frame, attributes: Tuple[Tuple[str, str], ...]
    ) -> Node:
        """Build the node for a closing element (children are final)."""
        return Element(frame.label, tuple(frame.children), attributes)

    def child_closed(self, node: Node) -> None:
        """Called after a completed child joined its parent (or the root)."""

    # -- event intake ------------------------------------------------------

    def feed(self, event: Event) -> None:
        kind, value, attrs = event
        if self._raw_stack:
            self._feed_raw(kind, value, attrs)
            return
        if kind == TEXT:
            if not self._stack:
                return  # whitespace outside the root element
            frame = self._stack[-1]
            if frame.children:
                if value.strip():
                    raise DocumentParseError(_MIXED % frame.label)
                return
            frame.text_parts.append(value)
            return
        if kind == START:
            if self._stack:
                frame = self._stack[-1]
                if "".join(frame.text_parts).strip():
                    raise DocumentParseError(_MIXED % frame.label)
                frame.text_parts.clear()
            if value == FUN_TAG:
                self._raw_stack.append(RawNode(value, dict(attrs)))
                return
            if value in (PARAMS_TAG, PARAM_TAG):
                raise DocumentParseError(
                    "%s may only appear directly under int:fun" % value
                )
            if value.startswith("{"):
                raise DocumentParseError(
                    "unsupported namespaced element %r" % value
                )
            opened = Frame(value, attrs)
            self._stack.append(opened)
            self.enter_element(opened)
            return
        # END
        frame = self._stack.pop()
        leading = "".join(frame.text_parts).strip()
        if not frame.children and leading:
            frame.children.append(Text(leading))
        attributes = _check_attributes(frame.label, frame.attrs)
        node = self.close_element(frame, attributes)
        self._add_child(node)

    def _feed_raw(self, kind: str, value: str, attrs) -> None:
        if kind == START:
            raw = RawNode(value, dict(attrs))
            self._raw_stack[-1].children.append(raw)
            self._raw_stack.append(raw)
        elif kind == TEXT:
            top = self._raw_stack[-1]
            if top.children:
                top.children[-1].tail_parts.append(value)
            else:
                top.text_parts.append(value)
        else:
            raw = self._raw_stack.pop()
            if not self._raw_stack:
                self._add_child(parse_raw(raw))

    def _add_child(self, node: Node) -> None:
        if self._stack:
            self._stack[-1].children.append(node)
        else:
            self._result = node
        self.child_closed(node)

    def finish(self) -> Node:
        if self._result is None:
            raise DocumentParseError("malformed XML: no element found")
        return self._result

    @property
    def depth(self) -> int:
        """Open-frame count (the spine length), raw capture included."""
        return len(self._stack) + len(self._raw_stack)


def build_node(source, builder: Optional[TreeBuilder] = None) -> Node:
    """Parse a document through the streaming builder."""
    builder = builder if builder is not None else TreeBuilder()
    for event in iter_events(source):
        builder.feed(event)
    return builder.finish()
