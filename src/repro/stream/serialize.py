"""Incremental serialization for the streaming pipeline.

The byte contract: concatenating everything a :class:`LineWriter`
receives reproduces :func:`repro.doc.xml_io.document_to_xml` exactly —
same pretty-printing, same escaping, no trailing newline.  Sealed
subtrees re-use their chunk (serialized once, at their absolute depth);
everything else goes through the shared iterative serializer.
"""

from __future__ import annotations

from typing import Callable, List, Tuple
from xml.sax.saxutils import quoteattr

from repro.doc.nodes import Node
from repro.doc.xml_io import _serialize

#: The document header :func:`document_to_xml` writes.
XML_HEADER = '<?xml version="1.0"?>'


class LineWriter:
    """Emit lines through a ``write(str)`` callback, newline-separated.

    The first line is written bare and every further line is prefixed
    with ``"\\n"``, so the accumulated stream never gains a trailing
    newline — matching the DOM serializer byte for byte.
    """

    __slots__ = ("_write", "_first")

    def __init__(self, write: Callable[[str], None]):
        self._write = write
        self._first = True

    def line(self, text: str) -> None:
        if self._first:
            self._first = False
            self._write(text)
        else:
            self._write("\n" + text)


def attr_string(attributes: Tuple[Tuple[str, str], ...]) -> str:
    """The serialized attribute list, exactly as the DOM serializer."""
    return "".join(
        " %s=%s" % (name, quoteattr(value)) for name, value in attributes
    )


def serialize_lines(node: Node, depth: int) -> List[str]:
    """Pretty-printed lines of one subtree at an absolute depth."""
    lines: List[str] = []
    _serialize(node, depth, lines, True)
    return lines


def chunk_of(node: Node, depth: int) -> str:
    """One child's serialized block: the sealed chunk when available."""
    chunk = getattr(node, "chunk", None)
    if chunk is not None:
        return chunk
    return "\n".join(serialize_lines(node, depth))
