"""repro — a reproduction of "Exchanging Intensional XML Data" (SIGMOD 2003).

Intensional XML documents embed calls to Web services; before such a
document is exchanged, the sender may have to *materialize* some calls so
the result conforms to an agreed exchange schema.  This package provides
the paper's full stack:

- documents (:mod:`repro.doc`) and schemas over labels *and* functions
  (:mod:`repro.schema`), with the XML syntaxes of Section 7
  (:mod:`repro.xschema`, :mod:`repro.doc.xml_io`);
- the safe / possible rewriting algorithms on automata products
  (:mod:`repro.rewriting`), including the lazy optimized variant and the
  mixed approach;
- schema-to-schema compatibility (:mod:`repro.schemarewrite`);
- a simulated Web-service fabric (:mod:`repro.services`) and the Active
  XML peer system with its Schema Enforcement module (:mod:`repro.axml`).
"""

from repro.doc import (
    Document,
    diff_documents,
    Element,
    FunctionCall,
    Text,
    call,
    el,
    text,
)
from repro.errors import (
    AccessDeniedError,
    DocumentError,
    FunctionUnavailableError,
    NoPossibleRewritingError,
    NoSafeRewritingError,
    PermanentFault,
    RegexSyntaxError,
    ReproError,
    RewriteError,
    RewriteExecutionError,
    SchemaError,
    ServiceFault,
    TransientFault,
    UnknownPeerError,
    UnknownServiceError,
    ValidationError,
    XMLSchemaIntError,
)
from repro.regex import parse_regex
from repro.rewriting import (
    CostModel,
    InvocationLog,
    RewriteEngine,
    RewriteResult,
    analyze_possible,
    analyze_safe,
    analyze_safe_lazy,
    execute_possible,
    execute_safe,
    mixed_rewrite_word,
    execute_safe_optimal,
    strategy_values,
    analyze_safe_directed,
    execute_safe_directed,
    safe_in_some_direction,
    RenameLabel,
    MapData,
    Unwrap,
    Wrap,
    DropElement,
    convert_document,
)
from repro.schema import (
    FunctionPattern,
    FunctionSignature,
    InstanceGenerator,
    InvocationPolicy,
    Schema,
    SchemaBuilder,
    allow_all,
    allow_only,
    deny,
    is_instance,
    validate,
    parse_dtd,
    schema_to_dtd,
)
from repro.schemarewrite import schema_safely_rewrites
from repro.services import (
    AccessControlList,
    CircuitBreaker,
    FaultReport,
    ResiliencePolicy,
    ResilientInvoker,
    Service,
    ServiceRegistry,
    SimulatedClock,
    WallClock,
    adversarial_responder,
    constant_responder,
    flaky_responder,
    latency_responder,
    outage_responder,
    sampling_responder,
    scripted_responder,
)
from repro.axml import (
    AXMLPeer,
    DocumentRepository,
    PeerNetwork,
    SchemaEnforcer,
    TransferReceipt,
    TriggerPolicy,
    apply_triggers,
    negotiate,
    NegotiationOutcome,
    UpdateService,
    insert_into,
    replace_matches,
    delete_matches,
)
from repro.exec import (
    CallDAG,
    CallTask,
    ExecPolicy,
    ExecReport,
    MaterializationScheduler,
    ScheduledInvoker,
    build_call_dag,
    call_fingerprint,
    fingerprint_digest,
)
from repro.xschema import compile_xschema, parse_xschema, schema_to_xschema
from repro.obs import (
    MetricsRegistry,
    NullMetricsRegistry,
    NullTracer,
    Span,
    Tracer,
    install,
    observing,
    render_span_dicts,
    spans_from_jsonl,
    uninstall,
)

__version__ = "1.0.0"

__all__ = [
    # documents
    "Document", "Element", "FunctionCall", "Text", "el", "call", "text",
    "diff_documents",
    # schemas
    "Schema", "SchemaBuilder", "FunctionSignature", "FunctionPattern",
    "InvocationPolicy", "allow_all", "allow_only", "deny",
    "validate", "is_instance", "InstanceGenerator", "parse_regex",
    # rewriting
    "RewriteEngine", "RewriteResult", "CostModel", "InvocationLog",
    "analyze_safe", "analyze_safe_lazy", "analyze_possible",
    "execute_safe", "execute_possible", "mixed_rewrite_word",
    "execute_safe_optimal", "strategy_values",
    "analyze_safe_directed", "execute_safe_directed",
    "safe_in_some_direction",
    "RenameLabel", "MapData", "Unwrap", "Wrap", "DropElement",
    "convert_document",
    "schema_safely_rewrites",
    # services
    "Service", "ServiceRegistry", "AccessControlList",
    "sampling_responder", "adversarial_responder", "scripted_responder",
    "constant_responder", "flaky_responder", "latency_responder",
    "outage_responder",
    # resilience
    "ResilientInvoker", "ResiliencePolicy", "CircuitBreaker",
    "FaultReport", "SimulatedClock", "WallClock",
    # Active XML
    "AXMLPeer", "PeerNetwork", "TransferReceipt", "DocumentRepository",
    "SchemaEnforcer",
    "TriggerPolicy", "apply_triggers", "negotiate", "NegotiationOutcome",
    "UpdateService", "insert_into", "replace_matches", "delete_matches",
    "parse_dtd", "schema_to_dtd",
    # XML Schema_int
    "parse_xschema", "schema_to_xschema", "compile_xschema",
    # observability
    "Tracer", "NullTracer", "Span", "MetricsRegistry",
    "NullMetricsRegistry", "install", "uninstall", "observing",
    "render_span_dicts", "spans_from_jsonl",
    # errors
    "ReproError", "RegexSyntaxError", "DocumentError", "SchemaError",
    "UnknownPeerError",
    "ValidationError", "RewriteError", "NoSafeRewritingError",
    "NoPossibleRewritingError", "RewriteExecutionError", "ServiceFault",
    "TransientFault", "PermanentFault", "FunctionUnavailableError",
    "UnknownServiceError", "AccessDeniedError", "XMLSchemaIntError",
    "__version__",
]
