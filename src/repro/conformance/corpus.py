"""Replayable corpus entries: serialize, shrink, replay.

Every disagreement the differential harness finds is minimized and
frozen as one JSON file under ``tests/corpus/`` so that

- the failure replays deterministically forever (entries carry the full
  scenario — schemas, document, knobs — not just the seed, so they
  survive fuzzer-generator changes), and
- the regression suite (``tests/test_regression_corpus.py``) re-runs
  every entry on every test run, and ``repro fuzz --replay`` does the
  same operationally.

Shrinking is greedy and structural: drop word positions / document
subtrees, simplify regexes (an alternation to one branch, a sequence
without one item, anything to epsilon), lower ``k``, drop the fault
schedule — keeping only changes that preserve the failure.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.automata.symbols import DATA
from repro.errors import ReproError
from repro.conformance.fuzzer import (
    DocumentScenario,
    EditScenario,
    WordScenario,
)
from repro.doc.document import Document
from repro.regex.ast import (
    Alt,
    AnySymbol,
    Atom,
    Empty,
    Epsilon,
    EPSILON,
    Regex,
    Repeat,
    Seq,
    Star,
    alt,
    repeat,
    seq,
    star,
)
from repro.regex.parser import parse_regex
from repro.schema.model import Schema, SchemaBuilder

#: Corpus format version, bumped on incompatible entry-schema changes.
FORMAT = 1


# ---------------------------------------------------------------------------
# Regex and schema serialization (parseable round-trip)
# ---------------------------------------------------------------------------


def regex_source(expr: Regex) -> str:
    """Render a regex in the parser's own notation (round-trips exactly).

    Unlike ``str(expr)``, the reserved ``#data`` atom is rendered as the
    ``data`` keyword the parser accepts.  Wildcards with exclusions have
    no source syntax and are rejected — the fuzzer never emits them.
    """
    if isinstance(expr, Epsilon):
        return "eps"
    if isinstance(expr, Empty):
        return "empty"
    if isinstance(expr, Atom):
        return "data" if expr.symbol == DATA else expr.symbol
    if isinstance(expr, AnySymbol):
        if expr.exclude:
            raise ValueError("wildcard exclusions have no source notation")
        return "any"
    if isinstance(expr, Seq):
        return ".".join(_wrap(item) for item in expr.items)
    if isinstance(expr, Alt):
        return "(" + " | ".join(regex_source(o) for o in expr.options) + ")"
    if isinstance(expr, Star):
        return _wrap(expr.item) + "*"
    if isinstance(expr, Repeat):
        if expr.low == 1 and expr.high is None:
            return _wrap(expr.item) + "+"
        if expr.low == 0 and expr.high == 1:
            return _wrap(expr.item) + "?"
        high = "" if expr.high is None else str(expr.high)
        return "%s{%d,%s}" % (_wrap(expr.item), expr.low, high)
    raise TypeError("unknown regex node %r" % (expr,))


def _wrap(expr: Regex) -> str:
    text = regex_source(expr)
    if isinstance(expr, Seq):
        return "(%s)" % text
    return text  # Alt already parenthesizes itself


def schema_to_dict(schema: Schema) -> dict:
    """A JSON-ready description of a (pattern-free) schema."""
    if schema.patterns:
        raise ValueError("pattern declarations are not serialized")
    return {
        "elements": {
            label: regex_source(expr)
            for label, expr in sorted(schema.label_types.items())
        },
        "functions": {
            name: [
                regex_source(signature.input_type),
                regex_source(signature.output_type),
            ]
            for name, signature in sorted(schema.functions.items())
        },
        "root": schema.root,
    }


def schema_from_dict(data: dict) -> Schema:
    builder = SchemaBuilder()
    for label, source in data.get("elements", {}).items():
        builder.element(label, source)
    for name, (input_source, output_source) in data.get(
        "functions", {}
    ).items():
        builder.function(name, input_source, output_source)
    if data.get("root"):
        builder.root(data["root"])
    return builder.build(strict=False)


# ---------------------------------------------------------------------------
# Corpus entries
# ---------------------------------------------------------------------------


def word_entry(scenario: WordScenario, note: str = "") -> dict:
    return {
        "format": FORMAT,
        "kind": "word",
        "seed": scenario.seed,
        "k": scenario.k,
        "word": list(scenario.word),
        "output_types": {
            name: regex_source(expr)
            for name, expr in sorted(scenario.output_types.items())
        },
        "target": regex_source(scenario.target),
        "note": note,
    }


def document_entry(scenario: DocumentScenario, note: str = "") -> dict:
    return {
        "format": FORMAT,
        "kind": "document",
        "seed": scenario.seed,
        "k": scenario.k,
        "mode": scenario.mode,
        "sender_schema": schema_to_dict(scenario.sender_schema),
        "exchange_schema": schema_to_dict(scenario.exchange_schema),
        "document": scenario.document.to_xml(),
        "invoker_seed": scenario.invoker_seed,
        "flaky_period": scenario.flaky_period,
        "retries": scenario.retries,
        "note": note,
    }


def edit_entry(scenario: EditScenario, note: str = "") -> dict:
    """An edit-script scenario entry: the base exchange plus the scripts.

    The base document is serialized post-normalization (the scenario
    carries it that way), so the scripts' node paths address the same
    nodes after the XML round-trip — the property
    :mod:`repro.doc.normalize` guarantees.
    """
    from repro.incremental.edits import script_to_json

    entry = document_entry(scenario.base, note)
    entry["kind"] = "edits"
    entry["seed"] = scenario.seed
    entry["scripts"] = [
        script_to_json(script) for script in scenario.scripts
    ]
    return entry


def word_scenario_from_entry(entry: dict) -> WordScenario:
    return WordScenario(
        seed=int(entry["seed"]),
        k=int(entry["k"]),
        word=tuple(entry["word"]),
        output_types={
            name: parse_regex(source)
            for name, source in entry["output_types"].items()
        },
        target=parse_regex(entry["target"]),
    )


def document_scenario_from_entry(entry: dict) -> DocumentScenario:
    return DocumentScenario(
        seed=int(entry["seed"]),
        k=int(entry["k"]),
        mode=entry["mode"],
        sender_schema=schema_from_dict(entry["sender_schema"]),
        exchange_schema=schema_from_dict(entry["exchange_schema"]),
        document=Document.from_xml(entry["document"]),
        invoker_seed=int(entry.get("invoker_seed", 0)),
        flaky_period=int(entry.get("flaky_period", 0)),
        retries=int(entry.get("retries", 2)),
    )


def edit_scenario_from_entry(entry: dict) -> EditScenario:
    from repro.doc.normalize import normalize_document
    from repro.incremental.edits import script_from_json

    base = document_scenario_from_entry(entry)
    base = base.with_document(normalize_document(base.document))
    return EditScenario(
        seed=int(entry["seed"]),
        base=base,
        scripts=tuple(
            script_from_json(script) for script in entry.get("scripts", [])
        ),
    )


def entry_name(entry: dict) -> str:
    """A stable, content-addressed file name for one entry."""
    payload = json.dumps(entry, sort_keys=True).encode("utf-8")
    digest = hashlib.sha256(payload).hexdigest()[:10]
    return "%s-%05d-%s.json" % (entry["kind"], int(entry["seed"]), digest)


def save_entry(corpus_dir: str, entry: dict) -> str:
    """Write one entry under ``corpus_dir``; returns its path."""
    os.makedirs(corpus_dir, exist_ok=True)
    path = os.path.join(corpus_dir, entry_name(entry))
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(entry, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_entry(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as handle:
        try:
            entry = json.load(handle)
        except ValueError as error:
            raise ReproError("%s: not a corpus entry (%s)" % (path, error))
    if not isinstance(entry, dict) or entry.get("kind") not in (
        "word", "document", "edits",
    ):
        raise ReproError(
            "%s: unknown corpus entry kind %r"
            % (path, entry.get("kind") if isinstance(entry, dict) else None)
        )
    return entry


def corpus_paths(target: str) -> List[str]:
    """Entry files under a path (a directory of ``*.json``, or one file)."""
    if os.path.isdir(target):
        return sorted(
            os.path.join(target, name)
            for name in os.listdir(target)
            if name.endswith(".json")
        )
    return [target]


def replay_entry(entry: dict, matrix=None):
    """Re-run one corpus entry; returns the disagreements it provokes.

    A healthy corpus replays to an empty list — every entry is a
    once-failing (or paper-derived) scenario the stack must now handle
    identically across all configurations and solvers.
    """
    from repro.conformance import differential

    if entry["kind"] == "word":
        scenario = word_scenario_from_entry(entry)
        found, _exact = differential.run_word_scenario(scenario)
        return found
    if entry["kind"] == "edits":
        # Edit entries always replay over the edit matrix — the caller's
        # ``matrix`` is engine-level, not enforcement-level.
        scenario = edit_scenario_from_entry(entry)
        return differential.run_edit_scenario(scenario)
    scenario = document_scenario_from_entry(entry)
    return differential.run_document_scenario(
        scenario, matrix or differential.DEFAULT_MATRIX
    )


# ---------------------------------------------------------------------------
# Shrinking
# ---------------------------------------------------------------------------


def _regex_shrinks(expr: Regex) -> Iterator[Regex]:
    """Strictly simpler candidates for one expression, most drastic first."""
    if isinstance(expr, (Epsilon, Empty)):
        return
    yield EPSILON
    if isinstance(expr, Atom):
        return
    if isinstance(expr, Seq):
        for index in range(len(expr.items)):
            yield seq(*(expr.items[:index] + expr.items[index + 1:]))
        for index, item in enumerate(expr.items):
            for smaller in _regex_shrinks(item):
                yield seq(*(
                    expr.items[:index] + (smaller,) + expr.items[index + 1:]
                ))
    elif isinstance(expr, Alt):
        for option in expr.options:
            yield option
        for index, option in enumerate(expr.options):
            for smaller in _regex_shrinks(option):
                yield alt(*(
                    expr.options[:index]
                    + (smaller,)
                    + expr.options[index + 1:]
                ))
    elif isinstance(expr, Star):
        yield expr.item
        for smaller in _regex_shrinks(expr.item):
            yield star(smaller)
    elif isinstance(expr, Repeat):
        yield expr.item
        if expr.high is None:
            yield repeat(expr.item, expr.low, expr.low + 1)
        for smaller in _regex_shrinks(expr.item):
            yield repeat(smaller, expr.low, expr.high)


def shrink_word_scenario(
    scenario: WordScenario,
    still_fails: Callable[[WordScenario], bool],
    max_rounds: int = 8,
) -> WordScenario:
    """Greedy minimization preserving ``still_fails``."""
    from dataclasses import replace

    def candidates(current: WordScenario) -> Iterator[WordScenario]:
        # Drop one word position.
        for index in range(len(current.word)):
            yield replace(
                current,
                word=current.word[:index] + current.word[index + 1:],
            )
        # Drop output types no longer mentioned anywhere.
        used = set(current.word)
        for expr in current.output_types.values():
            for node in expr.walk():
                if isinstance(node, Atom):
                    used.add(node.symbol)
        unused = set(current.output_types) - used
        if unused:
            yield replace(
                current,
                output_types={
                    name: expr
                    for name, expr in current.output_types.items()
                    if name not in unused
                },
            )
        # Lower the depth bound.
        if current.k > 1:
            yield replace(current, k=current.k - 1)
        # Simplify one output type.
        for name, expr in current.output_types.items():
            for smaller in _regex_shrinks(expr):
                outputs = dict(current.output_types)
                outputs[name] = smaller
                yield replace(current, output_types=outputs)
        # Simplify the target.
        for smaller in _regex_shrinks(current.target):
            yield replace(current, target=smaller)

    return _greedy(scenario, candidates, still_fails, max_rounds)


def shrink_document_scenario(
    scenario: DocumentScenario,
    still_fails: Callable[[DocumentScenario], bool],
    max_rounds: int = 6,
) -> DocumentScenario:
    """Greedy minimization of a document scenario preserving the failure."""
    from dataclasses import replace

    def candidates(current: DocumentScenario) -> Iterator[DocumentScenario]:
        # Drop the fault schedule first — most failures don't need it.
        if current.flaky_period:
            yield replace(current, flaky_period=0)
        if current.k > 1:
            yield replace(current, k=current.k - 1)
        # Remove one subtree of the document (deepest paths first, so
        # large prunes are attempted before leaf nibbles).
        paths = sorted(
            (path for path, _node in current.document.nodes() if path),
            key=len,
        )
        for path in paths:
            try:
                yield current.with_document(
                    current.document.splice(path, ())
                )
            except Exception:
                continue

    return _greedy(scenario, candidates, still_fails, max_rounds)


def shrink_edit_scenario(
    scenario: EditScenario,
    still_fails: Callable[[EditScenario], bool],
    max_rounds: int = 6,
) -> EditScenario:
    """Greedy minimization of an edit scenario preserving the failure.

    Structural drops first (whole scripts, then single edits — later
    edits' paths may dangle after a drop, which the oracle tolerates by
    skipping the rejected batch; ``still_fails`` decides whether the
    failure survived), then the base-scenario shrinks (fault schedule,
    depth bound, document subtrees).
    """
    from dataclasses import replace

    def candidates(current: EditScenario) -> Iterator[EditScenario]:
        scripts = current.scripts
        # Drop one whole script.
        for index in range(len(scripts)):
            yield replace(
                current, scripts=scripts[:index] + scripts[index + 1:]
            )
        # Drop one edit inside one script.
        for s_index, script in enumerate(scripts):
            if len(script) <= 1:
                continue
            for e_index in range(len(script)):
                shrunk = script[:e_index] + script[e_index + 1:]
                yield replace(
                    current,
                    scripts=scripts[:s_index] + (shrunk,)
                    + scripts[s_index + 1:],
                )
        # Base-scenario shrinks.
        base = current.base
        if base.flaky_period:
            yield replace(current, base=replace(base, flaky_period=0))
        if base.k > 1:
            yield replace(current, base=replace(base, k=base.k - 1))
        paths = sorted(
            (path for path, _node in base.document.nodes() if path),
            key=len,
        )
        for path in paths:
            try:
                yield replace(
                    current,
                    base=base.with_document(base.document.splice(path, ())),
                )
            except Exception:
                continue

    return _greedy(scenario, candidates, still_fails, max_rounds)


def _greedy(scenario, candidates, still_fails, max_rounds: int):
    for _round in range(max_rounds):
        improved = False
        for candidate in candidates(scenario):
            try:
                if still_fails(candidate):
                    scenario = candidate
                    improved = True
                    break
            except Exception:
                continue  # a shrink that crashes the check is not simpler
        if not improved:
            break
    return scenario
