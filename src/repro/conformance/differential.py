"""The differential runner: one scenario, every engine configuration.

The concurrency, observability and resilience layers all promise the
same contract: *they change latency and robustness, never results*.
This module enforces the contract empirically.  A scenario is executed
once per :class:`EngineConfig` in the matrix and every pair of outcomes
must agree on

- success/failure and the error text when failing,
- the produced document, byte for byte (``to_xml`` output),
- the number of service calls that entered the document,
- the rewriting mode that actually held (safe vs. possible fallback),
- the analysis cache accounting (hits/misses), which the concurrent
  scheduler guarantees bit-identical to a sequential run,
- the functions degraded around (AUTO-mode graceful degradation).

Word-level scenarios are additionally checked against the reference
interpreter (:mod:`repro.conformance.reference`) — eager, lazy and
possible solvers must reproduce the executable spec's verdicts on every
exact instance, plus the safe ⇒ possible implication.

``EngineConfig(mutate=True)`` deliberately corrupts the produced bytes;
it exists so the harness can prove, in tests and via ``repro fuzz
--self-test``, that a real divergence would not slip through.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.conformance.fuzzer import (
    DocumentScenario,
    EditScenario,
    WordScenario,
    fuzz_document_scenario,
    fuzz_edit_scenario,
    fuzz_word_scenario,
    per_call_invoker,
)
from repro.conformance.reference import (
    reference_possible,
    reference_safe,
)
from repro.automata.core import using_core
from repro.errors import ReproError, TransientFault
from repro.obs import MetricsRegistry, Tracer, observing
from repro.rewriting.engine import RewriteEngine
from repro.rewriting.lazy import analyze_safe_lazy
from repro.rewriting.possible import analyze_possible
from repro.rewriting.safe import analyze_safe
from repro.services.resilience import ResiliencePolicy, ResilientInvoker


@dataclass(frozen=True)
class EngineConfig:
    """One point of the configuration matrix."""

    name: str
    workers: int = 1
    lazy: bool = True
    observed: bool = False
    resilient: bool = False
    shared_cache: bool = False  # share one compilation cache across seeds
    core: str = "dict"  # automata core: "dict" or "bitset"
    #: Run the streaming enforcement pipeline (SAX parse + close-time
    #: rewriting + incremental emission) instead of the DOM path.  Skipped
    #: on possible-mode scenarios, which streaming rejects by design.
    streamed: bool = False
    mutate: bool = False  # self-test: corrupt the outcome on purpose


#: One process-wide compilation cache for every ``shared_cache`` run.
#: Deliberately *never* cleared between scenarios: a divergence caused by
#: artifact sharing across engines, documents or seeds would surface as a
#: disagreement with the compile-cold baseline.
_SHARED_COMPILE_CACHE = None
_SHARED_COMPILE_LOCK = threading.Lock()


def _compile_cache_for(config: "EngineConfig"):
    from repro.compile import DISABLED, CompilationCache

    if not config.shared_cache:
        # Baselines compile cold: every artifact rebuilt from scratch,
        # so the shared-cache variant is compared against the
        # no-sharing-whatsoever pipeline.
        return DISABLED
    global _SHARED_COMPILE_CACHE
    with _SHARED_COMPILE_LOCK:
        if _SHARED_COMPILE_CACHE is None:
            _SHARED_COMPILE_CACHE = CompilationCache()
        return _SHARED_COMPILE_CACHE


#: The shipped matrix: a baseline plus one variant per subsystem whose
#: "results never change" contract is on the line.
DEFAULT_MATRIX: Tuple[EngineConfig, ...] = (
    EngineConfig("baseline"),
    EngineConfig("workers-4", workers=4),
    EngineConfig("eager-game", lazy=False),
    EngineConfig("traced", observed=True),
    EngineConfig("resilient", resilient=True),
    EngineConfig("shared-cache", shared_cache=True),
    EngineConfig("bitset-core", core="bitset"),
    EngineConfig("streamed", streamed=True),
)

#: The matrix with a deliberately broken member, for harness self-tests.
SELF_TEST_MATRIX: Tuple[EngineConfig, ...] = DEFAULT_MATRIX + (
    EngineConfig("mutant", mutate=True),
)

#: The matrix the incremental-vs-full edit oracle runs over: the five
#: enforcement-relevant configurations plus the bitset automata core.
#: (``shared-cache`` is omitted — a session *is* a shared-cache run; the
#: within-config oracle compares it against compile-cold full passes
#: anyway.)
EDIT_MATRIX: Tuple[EngineConfig, ...] = (
    EngineConfig("baseline"),
    EngineConfig("workers-4", workers=4),
    EngineConfig("eager-game", lazy=False),
    EngineConfig("traced", observed=True),
    EngineConfig("resilient", resilient=True),
    EngineConfig("bitset-core", core="bitset"),
)

#: The edit matrix with a deliberately broken member, for self-tests.
EDIT_SELF_TEST_MATRIX: Tuple[EngineConfig, ...] = EDIT_MATRIX + (
    EngineConfig("mutant", mutate=True),
)


@dataclass
class ConfigOutcome:
    """Everything one configuration produced for one scenario."""

    config: str
    ok: bool
    error: Optional[str] = None
    xml: Optional[str] = None
    calls_made: int = 0
    mode_used: Optional[str] = None
    cache_hits: int = 0
    cache_misses: int = 0
    degraded: Tuple[str, ...] = ()

    #: The fields every configuration pair must agree on.
    COMPARED = (
        "ok", "error", "xml", "calls_made", "mode_used",
        "cache_hits", "cache_misses", "degraded",
    )


@dataclass(frozen=True)
class Disagreement:
    """One observed divergence, addressable enough to triage."""

    kind: str  # "word" or "document"
    seed: int
    config: str  # configuration (or solver) that diverged
    aspect: str  # which compared field / which verdict
    expected: str
    got: str

    def __str__(self) -> str:
        return "%s scenario %d: %s disagrees on %s (expected %s, got %s)" % (
            self.kind, self.seed, self.config, self.aspect,
            self.expected, self.got,
        )


@dataclass
class DifferentialReport:
    """Aggregate result of a fuzzing run."""

    scenarios: int = 0
    word_scenarios: int = 0
    document_scenarios: int = 0
    edit_scenarios: int = 0
    edit_passes_compared: int = 0
    exact_reference_checks: int = 0
    disagreements: List[Disagreement] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.disagreements

    def merge_scenario(self, kind: str,
                       found: Sequence[Disagreement]) -> None:
        self.scenarios += 1
        if kind == "word":
            self.word_scenarios += 1
        elif kind == "edits":
            self.edit_scenarios += 1
        else:
            self.document_scenarios += 1
        self.disagreements.extend(found)

    def summary(self) -> str:
        text = (
            "%d scenario(s): %d word (%d exact reference checks), "
            "%d document; %d disagreement(s)"
            % (
                self.scenarios, self.word_scenarios,
                self.exact_reference_checks, self.document_scenarios,
                len(self.disagreements),
            )
        )
        if self.edit_scenarios:
            text += ", %d edit (%d incremental passes compared)" % (
                self.edit_scenarios, self.edit_passes_compared,
            )
        return text


# ---------------------------------------------------------------------------
# Word-level differential: solvers vs. the reference interpreter
# ---------------------------------------------------------------------------


def run_word_scenario(
    scenario: WordScenario, invert_reference: bool = False
) -> Tuple[List[Disagreement], bool]:
    """Check every word-level solver against the executable spec.

    Returns ``(disagreements, exact)`` — ``exact`` reports whether the
    reference verdicts were exhaustive (they are, for fuzzed scenarios,
    whose output types are star-free by construction).
    ``invert_reference`` flips the spec's verdict for harness
    self-tests.
    """
    word, outputs, target, k = (
        scenario.word, scenario.output_types, scenario.target, scenario.k,
    )
    found: List[Disagreement] = []

    def note(config: str, aspect: str, expected, got) -> None:
        found.append(Disagreement(
            "word", scenario.seed, config, aspect, str(expected), str(got),
        ))

    ref_safe = reference_safe(word, outputs, target, k)
    ref_possible = reference_possible(word, outputs, target, k)
    exact = ref_safe.exact and ref_possible.exact
    expected_safe = ref_safe.exists ^ invert_reference
    expected_possible = ref_possible.exists ^ invert_reference

    eager = analyze_safe(word, outputs, target, k).exists
    lazy = analyze_safe_lazy(word, outputs, target, k).exists
    possible = analyze_possible(word, outputs, target, k).exists

    # The bitset core must reproduce every dict-core verdict exactly.
    with using_core("bitset"):
        bit_eager = analyze_safe(word, outputs, target, k).exists
        bit_lazy = analyze_safe_lazy(word, outputs, target, k).exists
        bit_possible = analyze_possible(word, outputs, target, k).exists

    if eager != lazy:
        note("lazy-game", "safe verdict vs eager", eager, lazy)
    if bit_eager != eager:
        note("bitset-core", "safe verdict vs dict core", eager, bit_eager)
    if bit_lazy != lazy:
        note("bitset-core", "lazy verdict vs dict core", lazy, bit_lazy)
    if bit_possible != possible:
        note("bitset-core", "possible verdict vs dict core",
             possible, bit_possible)
    if exact:
        if eager != expected_safe:
            note("safe-solver", "safe verdict vs reference",
                 expected_safe, eager)
        if possible != expected_possible:
            note("possible-solver", "possible verdict vs reference",
                 expected_possible, possible)
    if eager and not possible:
        note("possible-solver", "safe implies possible", True, False)
    return found, exact


# ---------------------------------------------------------------------------
# Document-level differential: the engine configuration matrix
# ---------------------------------------------------------------------------


def _flaky_invoker(invoker, seed: int, period: int):
    """Deterministic, order-independent fault injection.

    Roughly one call fingerprint in ``period`` fails its first attempt
    with a transient fault; retries succeed.  Keyed on the fingerprint
    (not an invocation counter) so concurrent and sequential runs inject
    the same faults.
    """
    from repro.exec.fingerprint import call_fingerprint

    failed = set()
    lock = threading.Lock()

    def wrapped(fc):
        fingerprint = call_fingerprint(fc)
        digest = hashlib.sha256(
            ("flaky|%d|%s" % (seed, fingerprint)).encode("utf-8")
        ).hexdigest()
        if int(digest, 16) % period == 0:
            with lock:
                fresh = fingerprint not in failed
                failed.add(fingerprint)
            if fresh:
                raise TransientFault(
                    "injected fault for %s" % fingerprint[:40]
                )
        return invoker(fc)

    return wrapped


def run_config(
    scenario: DocumentScenario, config: EngineConfig
) -> ConfigOutcome:
    """Execute one scenario under one engine configuration."""
    engine = RewriteEngine(
        target_schema=scenario.exchange_schema,
        sender_schema=scenario.sender_schema,
        k=scenario.k,
        mode=scenario.mode,
        lazy=config.lazy,
        workers=config.workers,
        dedup=True,
        compile_cache=_compile_cache_for(config),
    )
    invoker = per_call_invoker(scenario.sender_schema, scenario.invoker_seed)
    if config.resilient:
        if scenario.flaky_period:
            invoker = _flaky_invoker(
                invoker, scenario.invoker_seed, scenario.flaky_period
            )
        invoker = ResilientInvoker(
            invoker,
            ResiliencePolicy(
                max_attempts=scenario.retries + 1,
                jitter_seed=scenario.invoker_seed,
            ),
        )

    outcome = ConfigOutcome(config=config.name, ok=False)
    if config.streamed:
        return _run_streamed(scenario, config, engine, invoker, outcome)
    try:
        with using_core(config.core):
            if config.observed:
                with observing(Tracer(), MetricsRegistry()):
                    result = engine.rewrite(scenario.document, invoker)
            else:
                result = engine.rewrite(scenario.document, invoker)
    except ReproError as error:
        outcome.error = "%s: %s" % (type(error).__name__, error)
        outcome.cache_hits, outcome.cache_misses = engine.cache_stats
        return outcome
    outcome.ok = True
    outcome.xml = result.document.to_xml()
    outcome.calls_made = result.calls_made
    outcome.mode_used = result.mode_used
    outcome.cache_hits = result.cache_hits
    outcome.cache_misses = result.cache_misses
    outcome.degraded = result.degraded_functions
    if config.mutate:
        outcome.xml = (outcome.xml or "") + "<!-- mutated -->"
    return outcome


def _run_streamed(
    scenario: DocumentScenario,
    config: EngineConfig,
    engine: RewriteEngine,
    invoker,
    outcome: ConfigOutcome,
) -> ConfigOutcome:
    """The streaming pipeline on the scenario's serialized document.

    The document is round-tripped through its XML bytes (streaming has
    no DOM to start from), enforced as elements close and re-emitted
    incrementally; the collected emission is compared byte-for-byte
    against the DOM result.
    """
    from repro.stream.enforce import stream_rewrite

    chunks: List[str] = []
    try:
        with using_core(config.core):
            result = stream_rewrite(
                engine, scenario.document.to_xml(), invoker, chunks.append
            )
    except ReproError as error:
        outcome.error = "%s: %s" % (type(error).__name__, error)
        outcome.cache_hits, outcome.cache_misses = engine.cache_stats
        return outcome
    outcome.ok = True
    outcome.xml = "".join(chunks)
    outcome.calls_made = result.calls_made
    outcome.mode_used = result.mode_used
    outcome.cache_hits = result.cache_hits
    outcome.cache_misses = result.cache_misses
    outcome.degraded = result.degraded_functions
    if config.mutate:
        outcome.xml = (outcome.xml or "") + "<!-- mutated -->"
    return outcome


def run_document_scenario(
    scenario: DocumentScenario,
    matrix: Sequence[EngineConfig] = DEFAULT_MATRIX,
) -> List[Disagreement]:
    """Run the configuration matrix and compare everything to baseline."""
    configs = [
        config for config in matrix
        if not (config.streamed and scenario.mode == "possible")
    ]
    outcomes = [run_config(scenario, config) for config in configs]
    baseline, variants = outcomes[0], outcomes[1:]
    found: List[Disagreement] = []
    for config, variant in zip(configs[1:], variants):
        aspects = ConfigOutcome.COMPARED
        if config.streamed and not baseline.ok and not variant.ok:
            # Streaming checks children words post-order (at close time)
            # while the DOM walk is top-down, so on documents with several
            # independent violations a different one may surface first —
            # and the error-path cache accounting is order-dependent.
            # Both paths must still agree that the document is rejected.
            aspects = ("ok",)
        for aspect in aspects:
            expected = getattr(baseline, aspect)
            got = getattr(variant, aspect)
            if expected != got:
                found.append(Disagreement(
                    "document", scenario.seed, variant.config, aspect,
                    _excerpt(expected), _excerpt(got),
                ))
    return found


def _excerpt(value, limit: int = 120) -> str:
    text = repr(value)
    if len(text) > limit:
        digest = hashlib.sha256(text.encode("utf-8")).hexdigest()[:10]
        text = "%s... [%d chars, sha %s]" % (text[:limit], len(text), digest)
    return text


# ---------------------------------------------------------------------------
# Edit-script differential: incremental sessions vs. full re-enforcement
# ---------------------------------------------------------------------------


def _edit_invoker(scenario: DocumentScenario, config: EngineConfig):
    """A fresh invoker stack for one enforcement run under ``config``.

    Per-call-seeded sampling plus, for the resilient configuration, the
    fingerprint-keyed fault injection and the retrying wrapper — built
    fresh per run so the session and every full reference pass observe
    identical service behavior.
    """
    invoker = per_call_invoker(scenario.sender_schema, scenario.invoker_seed)
    if config.resilient:
        if scenario.flaky_period:
            invoker = _flaky_invoker(
                invoker, scenario.invoker_seed, scenario.flaky_period
            )
        invoker = ResilientInvoker(
            invoker,
            ResiliencePolicy(
                max_attempts=scenario.retries + 1,
                jitter_seed=scenario.invoker_seed,
            ),
        )
    return invoker


def run_edit_config(
    scenario: EditScenario, config: EngineConfig
) -> Tuple[List[Disagreement], List[dict]]:
    """Drive one incremental session through the scenario's scripts.

    After every pass (initial enforcement, then one per applied script)
    the session's receipt is compared field-by-field against a fresh
    full enforcement of the *same* source document with a fresh invoker
    — the incremental-vs-full oracle.  Returns the disagreements and the
    receipt sequence (for cross-configuration comparison).
    """
    from repro.axml.enforcement import SchemaEnforcer
    from repro.compile import CompilationCache
    from repro.incremental import EditError, full_receipt

    base = scenario.base

    def enforcer() -> SchemaEnforcer:
        return SchemaEnforcer(
            target_schema=base.exchange_schema,
            sender_schema=base.sender_schema,
            k=base.k,
            mode=base.mode,
            lazy=config.lazy,
            workers=config.workers,
            dedup=True,
            compile_cache=CompilationCache(),
        )

    found: List[Disagreement] = []
    receipts: List[dict] = []

    def note(aspect: str, expected, got) -> None:
        found.append(Disagreement(
            "edits", scenario.seed, config.name, aspect,
            _excerpt(expected), _excerpt(got),
        ))

    def drive() -> None:
        session = enforcer().session(
            base.document, _edit_invoker(base, config)
        )
        steps = [("initial", None)] + [
            ("script-%d" % index, script)
            for index, script in enumerate(scenario.scripts, 1)
        ]
        for label, script in steps:
            if script is None:
                outcome = session.enforce()
            else:
                try:
                    outcome = session.apply(script)
                except EditError:
                    # Rejected atomically (config-independent: rejection
                    # is a pure tree-shape decision) — no pass happened.
                    continue
            incremental = outcome.receipt()
            if config.mutate:
                incremental = dict(
                    incremental,
                    xml=(incremental["xml"] or "") + "<!-- mutated -->",
                )
            reference = full_receipt(
                enforcer().enforce_document(
                    session.document, _edit_invoker(base, config)
                )
            )
            for aspect in sorted(incremental):
                if incremental[aspect] != reference[aspect]:
                    note(
                        "%s:%s" % (label, aspect),
                        reference[aspect], incremental[aspect],
                    )
            receipts.append(incremental)

    with using_core(config.core):
        if config.observed:
            with observing(Tracer(), MetricsRegistry()):
                drive()
        else:
            drive()
    return found, receipts


def run_edit_scenario(
    scenario: EditScenario,
    matrix: Sequence[EngineConfig] = EDIT_MATRIX,
    report: Optional[DifferentialReport] = None,
) -> List[Disagreement]:
    """The full edit oracle: within-config incremental-vs-full, plus
    cross-config agreement of the receipt sequences against baseline."""
    found: List[Disagreement] = []
    sequences: List[Tuple[str, List[dict]]] = []
    for config in matrix:
        config_found, receipts = run_edit_config(scenario, config)
        found.extend(config_found)
        sequences.append((config.name, receipts))
        if report is not None:
            report.edit_passes_compared += len(receipts)
    _, baseline = sequences[0]
    for name, receipts in sequences[1:]:
        if len(receipts) != len(baseline):
            found.append(Disagreement(
                "edits", scenario.seed, name, "pass count",
                str(len(baseline)), str(len(receipts)),
            ))
            continue
        for index, (expected, got) in enumerate(zip(baseline, receipts)):
            for aspect in sorted(expected):
                if expected[aspect] != got[aspect]:
                    found.append(Disagreement(
                        "edits", scenario.seed, name,
                        "pass %d vs baseline: %s" % (index, aspect),
                        _excerpt(expected[aspect]), _excerpt(got[aspect]),
                    ))
    return found


# ---------------------------------------------------------------------------
# Seed-driven entry points (used by the CLI and the corpus replayer)
# ---------------------------------------------------------------------------


def run_seed(
    seed: int,
    kind: str = "all",
    matrix: Sequence[EngineConfig] = DEFAULT_MATRIX,
    invert_reference: bool = False,
    report: Optional[DifferentialReport] = None,
) -> DifferentialReport:
    """Fuzz and differentially execute one seed; accumulate into a report.

    ``kind`` selects the scenario family: ``"word"``, ``"document"``,
    ``"all"`` (both), or ``"edits"`` — the incremental-enforcement
    oracle, which runs over :data:`EDIT_MATRIX` regardless of
    ``matrix`` (its configurations are enforcement-level, not
    engine-level).
    """
    report = report if report is not None else DifferentialReport()
    if kind in ("word", "all"):
        scenario = fuzz_word_scenario(seed)
        found, exact = run_word_scenario(scenario, invert_reference)
        if exact:
            report.exact_reference_checks += 1
        report.merge_scenario("word", found)
    if kind in ("document", "all"):
        scenario = fuzz_document_scenario(seed)
        report.merge_scenario(
            "document", run_document_scenario(scenario, matrix)
        )
    if kind == "edits":
        edit_matrix = (
            EDIT_SELF_TEST_MATRIX if invert_reference else EDIT_MATRIX
        )
        scenario = fuzz_edit_scenario(seed)
        report.merge_scenario(
            "edits", run_edit_scenario(scenario, edit_matrix, report)
        )
    return report
