"""The reference interpreter: Definitions 4-7 evaluated literally.

The production solvers answer "does a safe (possible) k-depth rewriting
exist?" by building ``A_w^k``, complementing the target and solving a
marking game — four automata constructions deep.  This module answers
the same question with *none* of that machinery, by direct recursion on
the definitions:

- a rewriting processes the children word left to right; at a plain
  symbol there is no choice, at a function call we either **keep** it or
  (while the nesting depth allows, Definition 7) **invoke** it;
- an invoked call returns *some word of its declared output type*; the
  returned symbols are processed in place, one level deeper, so calls
  returned by calls recurse up to ``k``;
- a **safe** rewriting (Definition 5) must end inside the target
  language for *every* adversarial choice of outputs, with later
  decisions allowed to depend on earlier outputs (the strategy is
  adaptive, knowledge flowing left to right);
- a **possible** rewriting (Definition 4) needs only *some* choice of
  outputs to land in the target language.

The produced prefix is tracked as a Brzozowski derivative of the target,
so the state space is (pending items, residual language) — small enough
to memoize, and entirely independent from the automata stack it checks.

Output languages are enumerated **bounded**: for star-free (finite)
output types the enumeration is exhaustive and the verdict ``exact``;
types with ``*``/``+``/unbounded repeats are truncated at
``max_output_length`` and the verdict is flagged approximate, so callers
(the differential runner, the k=2 oracle tests) know when agreement is a
hard requirement and when it is merely advisory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Optional, Sequence, Tuple

from repro.doc.document import Document
from repro.doc.nodes import Element, FunctionCall, Node, Text, symbol_of
from repro.regex.ast import (
    Alt,
    AnySymbol,
    Atom,
    Empty,
    Epsilon,
    Regex,
    Repeat,
    Seq,
    Star,
)
from repro.regex.ops import derivative, enumerate_words, nullable
from repro.schema.model import Schema

#: Default truncation bound for enumerated output languages.
DEFAULT_MAX_OUTPUT_LENGTH = 8

#: Work items are (symbol, depth) pairs: depth counts invocation nesting.
Item = Tuple[str, int]


@dataclass(frozen=True)
class ReferenceVerdict:
    """The reference interpreter's answer for one question.

    ``exact`` is True when every output language that the evaluation
    could draw from was enumerated exhaustively; when False the verdict
    is a truncation of the true (infinite) adversary and only agreement
    *modulo the bound* can be asserted.
    """

    exists: bool
    exact: bool = True

    def __bool__(self) -> bool:  # pragma: no cover - convenience only
        return self.exists


def output_language_bound(expr: Regex) -> Optional[int]:
    """Length of the longest word of ``lang(expr)``, or None if unbounded."""
    if isinstance(expr, (Epsilon, Empty)):
        return 0
    if isinstance(expr, (Atom, AnySymbol)):
        return 1
    if isinstance(expr, Seq):
        total = 0
        for item in expr.items:
            bound = output_language_bound(item)
            if bound is None:
                return None
            total += bound
        return total
    if isinstance(expr, Alt):
        longest = 0
        for option in expr.options:
            bound = output_language_bound(option)
            if bound is None:
                return None
            longest = max(longest, bound)
        return longest
    if isinstance(expr, Star):
        return None if output_language_bound(expr.item) != 0 else 0
    if isinstance(expr, Repeat):
        bound = output_language_bound(expr.item)
        if bound == 0:
            return 0
        if expr.high is None or bound is None:
            return None
        return expr.high * bound
    raise TypeError("unknown regex node %r" % (expr,))


class _ReferenceGame:
    """One memoized evaluation of the word-level game tree."""

    def __init__(
        self,
        output_types: Dict[str, Regex],
        k: int,
        invocable: Optional[Callable[[str], bool]],
        universal: bool,
        max_output_length: int,
    ):
        self.output_types = output_types
        self.k = k
        self.invocable = invocable or (lambda _name: True)
        self.universal = universal
        self.max_output_length = max_output_length
        self.exact = True
        self._outputs: Dict[str, Tuple[Tuple[str, ...], ...]] = {}
        self._memo: Dict[Tuple[Tuple[Item, ...], Regex], bool] = {}

    def outputs_of(self, name: str) -> Tuple[Tuple[str, ...], ...]:
        """The enumerated output language of one function, cached."""
        words = self._outputs.get(name)
        if words is None:
            expr = self.output_types[name]
            bound = output_language_bound(expr)
            if bound is None or bound > self.max_output_length:
                self.exact = False
            if any(isinstance(node, AnySymbol) for node in expr.walk()):
                # Wildcard outputs enumerate to a placeholder symbol; the
                # true adversary ranges over the whole alphabet.
                self.exact = False
            words = tuple(enumerate_words(expr, self.max_output_length))
            self._outputs[name] = words
        return words

    def may_invoke(self, symbol: str, depth: int) -> bool:
        return (
            depth < self.k
            and symbol in self.output_types
            and self.invocable(symbol)
        )

    def wins(self, items: Tuple[Item, ...], residual: Regex) -> bool:
        """Can we rewrite the pending items into ``lang(residual)``?"""
        if isinstance(residual, Empty):
            return False
        if not items:
            return nullable(residual)
        key = (items, residual)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        symbol, depth = items[0]
        rest = items[1:]
        # Keeping the symbol (the only move for plain symbols).
        result = self.wins(rest, derivative(residual, symbol))
        if not result and self.may_invoke(symbol, depth):
            quantifier = all if self.universal else any
            result = quantifier(
                self.wins(
                    tuple((out, depth + 1) for out in word) + rest, residual
                )
                for word in self.outputs_of(symbol)
            )
        self._memo[key] = result
        return result


def _evaluate(
    word: Sequence[str],
    output_types: Dict[str, Regex],
    target: Regex,
    k: int,
    invocable: Optional[Callable[[str], bool]],
    universal: bool,
    max_output_length: int,
) -> ReferenceVerdict:
    game = _ReferenceGame(
        output_types, k, invocable, universal, max_output_length
    )
    exists = game.wins(tuple((symbol, 0) for symbol in word), target)
    return ReferenceVerdict(exists=exists, exact=game.exact)


def reference_safe(
    word: Sequence[str],
    output_types: Dict[str, Regex],
    target: Regex,
    k: int = 1,
    invocable: Optional[Callable[[str], bool]] = None,
    max_output_length: int = DEFAULT_MAX_OUTPUT_LENGTH,
) -> ReferenceVerdict:
    """Does a safe k-depth rewriting of ``word`` into ``target`` exist?

    Evaluates Definition 5 (with Definition 7's depth bound) as a game
    tree: our keep/invoke choices are existential, the adversary's
    output words universal, knowledge flows left to right.  Must agree
    with :func:`repro.rewriting.safe.analyze_safe` on every exact
    instance.
    """
    return _evaluate(
        word, output_types, target, k, invocable, True, max_output_length
    )


def reference_possible(
    word: Sequence[str],
    output_types: Dict[str, Regex],
    target: Regex,
    k: int = 1,
    invocable: Optional[Callable[[str], bool]] = None,
    max_output_length: int = DEFAULT_MAX_OUTPUT_LENGTH,
) -> ReferenceVerdict:
    """Does a possible k-depth rewriting exist (Definition 4)?

    Same game tree as :func:`reference_safe` with the adversary's
    quantifier flipped to existential: one favourable run suffices.
    """
    return _evaluate(
        word, output_types, target, k, invocable, False, max_output_length
    )


# ---------------------------------------------------------------------------
# Document-level reference checking (Section 4's three-stage driver)
# ---------------------------------------------------------------------------


def reference_can_rewrite(
    document: Document,
    target_schema: Schema,
    sender_schema: Optional[Schema] = None,
    k: int = 1,
    mode: str = "safe",
    invocable: Optional[Callable[[str], bool]] = None,
    max_output_length: int = DEFAULT_MAX_OUTPUT_LENGTH,
) -> ReferenceVerdict:
    """Static document-level check, straight from the recursive definitions.

    Mirrors the paper's driver declaratively: every function call's
    parameter word must rewrite into its input type (the receiver's view
    first, then the sender's — bottom-up parameter rewriting), and every
    element's children word into the target schema's content model.  The
    word-level question is answered by the reference game, not by the
    automata stack, so this is an independent oracle for
    :meth:`repro.rewriting.engine.RewriteEngine.can_rewrite`.

    ``mode`` is ``"safe"``, ``"possible"`` or ``"auto"`` (safe, else
    possible — Section 3's two-step process).
    """
    checker = _DocumentChecker(
        target_schema, sender_schema, k, mode, invocable, max_output_length
    )
    root = document.root
    if isinstance(root, Text):
        return ReferenceVerdict(True, True)
    exists = checker.check_node(root)
    return ReferenceVerdict(exists, checker.exact)


class _DocumentChecker:
    def __init__(
        self,
        target_schema: Schema,
        sender_schema: Optional[Schema],
        k: int,
        mode: str,
        invocable: Optional[Callable[[str], bool]],
        max_output_length: int,
    ):
        self.target = target_schema
        self.sender = sender_schema
        self.k = k
        self.mode = mode
        self.invocable = invocable
        self.max_output_length = max_output_length
        self.exact = True

    # -- schema plumbing (the Section 4 signature-resolution contract) ----

    def _input_type(self, name: str) -> Optional[Regex]:
        input_type = self.target.input_type(name)
        if input_type is None and self.sender is not None:
            input_type = self.sender.input_type(name)
        return input_type

    def _signature(self, name: str):
        signature = None
        if self.sender is not None:
            signature = self.sender.signature_of(name)
        if signature is None:
            signature = self.target.signature_of(name)
        return signature

    def _candidates(self, word: Sequence[str]) -> Tuple[str, ...]:
        names = set(self.target.function_names())
        if self.sender is not None:
            names |= self.sender.function_names()
        names |= {s for s in word if self._signature(s) is not None}
        return tuple(sorted(names))

    def _desugared(self, target: Regex, word: Sequence[str]) -> Regex:
        if not self.target.patterns:
            return target
        candidates = self._candidates(word)
        schema = Schema(
            {"__target__": target}, {}, dict(self.target.patterns)
        )
        return schema.desugar_patterns(candidates, self._signature).label_types[
            "__target__"
        ]

    # -- the recursive check ----------------------------------------------

    def check_node(self, node: Node) -> bool:
        if isinstance(node, Text):
            return True
        if isinstance(node, FunctionCall):
            input_type = self._input_type(node.name)
            if input_type is None:
                return False
            return self.check_forest(node.params, input_type)
        content = self.target.type_of(node.label)
        if content is None:
            return False
        return self.check_forest(node.children, content)

    def check_forest(self, forest: Sequence[Node], target: Regex) -> bool:
        for node in forest:
            if not self.check_node(node):
                return False
        word = tuple(symbol_of(node) for node in forest)
        target = self._desugared(target, word)
        output_types: Dict[str, Regex] = {}
        for name in self._candidates(word):
            signature = self._signature(name)
            if signature is not None:
                output_types[name] = signature.output_type
        if self.mode in ("safe", "auto"):
            verdict = reference_safe(
                word, output_types, target, self.k, self.invocable,
                self.max_output_length,
            )
            self.exact = self.exact and verdict.exact
            if verdict.exists:
                return True
            if self.mode == "safe":
                return False
        verdict = reference_possible(
            word, output_types, target, self.k, self.invocable,
            self.max_output_length,
        )
        self.exact = self.exact and verdict.exact
        return verdict.exists
