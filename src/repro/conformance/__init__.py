"""Differential conformance tooling: the shipped correctness harness.

The optimized exchange stack (marking games, lazy pruning, analysis
caches, concurrent prefetching, resilient invocation) must never drift
from the paper's declarative semantics.  This package keeps it honest
with four cooperating pieces:

- :mod:`repro.conformance.reference` — an *executable specification*:
  a reference interpreter that evaluates safe and possible rewriting
  (Definitions 4-7) directly as game trees, with no automata, for any
  depth bound ``k``;
- :mod:`repro.conformance.fuzzer` — seeded generation of word-level
  rewriting problems and whole document-exchange scenarios (schemas,
  intensional documents, fault schedules);
- :mod:`repro.conformance.differential` — runs one scenario through a
  matrix of engine configurations (sequential vs. concurrent, lazy vs.
  eager, traced vs. untraced, plain vs. resilient) and reports any
  divergence in output bytes, invocation counts or cache accounting;
- :mod:`repro.conformance.corpus` — serializes failing scenarios to
  replayable JSON corpus entries, with automatic greedy shrinking.

The ``repro fuzz`` CLI subcommand is the operational entry point; the
regression tests replay ``tests/corpus/*.json`` on every run.
"""

from repro.conformance.corpus import (
    document_entry,
    edit_entry,
    edit_scenario_from_entry,
    load_entry,
    replay_entry,
    save_entry,
    shrink_document_scenario,
    shrink_edit_scenario,
    shrink_word_scenario,
    word_entry,
)
from repro.conformance.differential import (
    DEFAULT_MATRIX,
    EDIT_MATRIX,
    ConfigOutcome,
    Disagreement,
    DifferentialReport,
    EngineConfig,
    run_config,
    run_document_scenario,
    run_edit_scenario,
    run_word_scenario,
)
from repro.conformance.fuzzer import (
    DocumentScenario,
    EditScenario,
    WordScenario,
    fuzz_document_scenario,
    fuzz_edit_scenario,
    fuzz_word_scenario,
    per_call_invoker,
)
from repro.conformance.reference import (
    ReferenceVerdict,
    output_language_bound,
    reference_can_rewrite,
    reference_possible,
    reference_safe,
)

__all__ = [
    "ConfigOutcome",
    "DEFAULT_MATRIX",
    "EDIT_MATRIX",
    "Disagreement",
    "DifferentialReport",
    "DocumentScenario",
    "EditScenario",
    "EngineConfig",
    "ReferenceVerdict",
    "WordScenario",
    "document_entry",
    "edit_entry",
    "edit_scenario_from_entry",
    "fuzz_document_scenario",
    "fuzz_edit_scenario",
    "fuzz_word_scenario",
    "load_entry",
    "output_language_bound",
    "per_call_invoker",
    "reference_can_rewrite",
    "reference_possible",
    "reference_safe",
    "replay_entry",
    "run_config",
    "run_document_scenario",
    "run_edit_scenario",
    "run_word_scenario",
    "save_entry",
    "shrink_document_scenario",
    "shrink_edit_scenario",
    "shrink_word_scenario",
    "word_entry",
]
