"""Seeded scenario generation for the differential conformance harness.

Two families of scenarios, both fully determined by an integer seed:

- :func:`fuzz_word_scenario` — word-level rewriting problems (children
  word, output types, target, k).  Output types are kept star-free so
  the reference interpreter's enumeration is exhaustive and agreement
  with the automata solvers is a hard requirement; targets range over
  the full regex language (stars included).  Calls may return other
  calls (and themselves), exercising ``k = 2`` nesting.
- :func:`fuzz_document_scenario` — whole exchange scenarios: a random
  sender schema with intensional content, an exchange schema derived
  from it by re-deciding per function atom whether the call must be
  materialized, may stay, or both; a seeded instance document; a fault
  schedule; and the depth/mode knobs.  These feed the engine
  configuration matrix in :mod:`repro.conformance.differential`.

Generation reuses :mod:`repro.workloads.generators`'s philosophy (one
``random.Random`` in, deterministic problem out) and the schema
instance generator for documents and simulated service outputs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.doc.document import Document
from repro.exec.fingerprint import call_fingerprint
from repro.regex.ast import Regex, alt, atom, opt, seq, star
from repro.schema.generator import InstanceGenerator
from repro.schema.model import Schema, SchemaBuilder
from repro.workloads.generators import WordProblem

#: Plain (non-call) symbols of word-level problems.
WORD_ALPHABET = ("a", "b", "c")


# ---------------------------------------------------------------------------
# Word-level scenarios
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class WordScenario:
    """One word-level differential test case, reconstructible from JSON."""

    seed: int
    k: int
    word: Tuple[str, ...]
    output_types: Dict[str, Regex] = field(hash=False)
    target: Regex = None

    @property
    def problem(self) -> WordProblem:
        return WordProblem(self.word, dict(self.output_types), self.target)


def _random_finite_regex(
    rng: random.Random, symbols: Tuple[str, ...], budget: int = 4
) -> Regex:
    """A random star-free expression: finite, exhaustively enumerable."""
    if budget <= 1 or rng.random() < 0.4:
        return atom(rng.choice(symbols))
    shape = rng.random()
    left = _random_finite_regex(rng, symbols, budget // 2)
    if shape < 0.2:
        return opt(left)
    right = _random_finite_regex(rng, symbols, budget - budget // 2)
    if shape < 0.6:
        return seq(left, right)
    return alt(left, right)


def _random_target(
    rng: random.Random, symbols: Tuple[str, ...], budget: int = 6
) -> Regex:
    """A random target expression; stars allowed (matching stays exact)."""
    if budget <= 1 or rng.random() < 0.35:
        leaf = atom(rng.choice(symbols))
        return star(leaf) if rng.random() < 0.25 else leaf
    shape = rng.random()
    left = _random_target(rng, symbols, budget // 2)
    if shape < 0.15:
        return opt(left)
    if shape < 0.25:
        return star(left)
    right = _random_target(rng, symbols, budget - budget // 2)
    if shape < 0.65:
        return seq(left, right)
    return alt(left, right)


def fuzz_word_scenario(seed: int) -> WordScenario:
    """The word-level scenario fully determined by ``seed``."""
    rng = random.Random("word-%d" % seed)
    k = rng.choice((1, 1, 2))
    n_calls = rng.randint(0, 2)
    call_names = tuple("q%d" % (i + 1) for i in range(max(n_calls, 1)))

    output_types: Dict[str, Regex] = {}
    for index in range(n_calls):
        name = call_names[index]
        # Outputs draw from the plain alphabet, plus other call names with
        # some probability — nested calls are what k=2 is about.
        symbols: Tuple[str, ...] = WORD_ALPHABET
        if rng.random() < 0.45:
            symbols = symbols + call_names[: n_calls or 1]
        output_types[name] = _random_finite_regex(rng, symbols)

    length = rng.randint(1, 4)
    word: List[str] = []
    for _ in range(length):
        if n_calls and rng.random() < 0.45:
            word.append(rng.choice(call_names[:n_calls]))
        else:
            word.append(rng.choice(WORD_ALPHABET))

    target_symbols = WORD_ALPHABET + tuple(output_types)
    target = _random_target(rng, target_symbols)
    return WordScenario(
        seed=seed, k=k, word=tuple(word), output_types=output_types,
        target=target,
    )


# ---------------------------------------------------------------------------
# Document-level scenarios
# ---------------------------------------------------------------------------


@dataclass
class DocumentScenario:
    """One end-to-end exchange scenario for the configuration matrix.

    The scenario is self-contained — schemas and the document travel
    with it (serialized in corpus entries), never regenerated from the
    seed — so corpus replays stay stable even when the generator
    evolves.  ``flaky_period``/``retries`` describe the fault schedule
    the resilient configuration injects; ``invoker_seed`` drives the
    per-call-seeded sampling services.
    """

    seed: int
    k: int
    mode: str
    sender_schema: Schema
    exchange_schema: Schema
    document: Document
    invoker_seed: int = 0
    flaky_period: int = 0
    retries: int = 2

    def with_document(self, document: Document) -> "DocumentScenario":
        return replace(self, document=document)


def per_call_invoker(schema: Schema, seed: int):
    """Simulated services answering from per-call-seeded sampling.

    Each call's output is an instance of its declared output type drawn
    from ``random.Random((seed, fingerprint))`` — independent of
    invocation order, so sequential and concurrent runs (and retries)
    observe byte-identical service answers.  This mirrors the CLI's
    ``rewrite --workers N`` sampling responder.
    """

    def invoker(fc):
        rng = random.Random("%s|%s" % (seed, call_fingerprint(fc)))
        return InstanceGenerator(schema, rng, max_depth=4).output_forest(
            fc.name
        )

    return invoker


def _random_output_type(rng: random.Random, leaves: List[str],
                        calls: List[str]) -> Tuple[str, bool]:
    """A content-model source string for one function's output type.

    Returns ``(source, nested)`` — ``nested`` flags outputs that may
    contain another call, which need ``k >= 2`` to flatten.
    """
    first = rng.choice(leaves)
    roll = rng.random()
    if roll < 0.25:
        return first, False
    if roll < 0.40:
        return "%s?" % first, False
    if roll < 0.55:
        second = rng.choice([leaf for leaf in leaves if leaf != first])
        return "%s.%s" % (first, second), False
    if roll < 0.70:
        second = rng.choice([leaf for leaf in leaves if leaf != first])
        return "(%s | %s)" % (first, second), False
    if roll < 0.80 and calls:
        return "%s.%s?" % (first, rng.choice(calls)), True
    return "%s*" % first, False


def _exchange_part(rng: random.Random, name: str, output_source: str) -> str:
    """How the exchange schema re-declares one function atom.

    Materialized (the receiver wants values), intensional (the call
    itself is fine), or either — the three stances Section 3 motivates.
    """
    roll = rng.random()
    if roll < 0.4:
        return "(%s)" % output_source
    if roll < 0.6:
        return name
    return "(%s | (%s))" % (name, output_source)


def fuzz_document_scenario(seed: int) -> DocumentScenario:
    """The document-exchange scenario fully determined by ``seed``."""
    rng = random.Random("doc-%d" % seed)
    n_leaves = rng.randint(3, 5)
    leaves = ["l%d" % (i + 1) for i in range(n_leaves)]
    n_functions = rng.randint(1, 3)
    functions = ["s%d" % (i + 1) for i in range(n_functions)]

    output_sources = {}
    nested_calls = False
    for index, name in enumerate(functions):
        peers = functions[:index]  # only earlier names: no output cycles
        output_sources[name], nested = _random_output_type(rng, leaves, peers)
        nested_calls = nested_calls or nested

    input_sources = {
        name: rng.choice(["data", rng.choice(leaves)]) for name in functions
    }

    # The root's content interleaves leaf labels and function atoms, each
    # symbol used once (one-unambiguous by construction, like the paper's
    # content models).
    parts: List[Tuple[str, str]] = []  # (symbol, occurrence suffix)
    for name in functions:
        parts.append((name, rng.choice(["", "", "?"])))
    for leaf in rng.sample(leaves, rng.randint(1, min(3, n_leaves))):
        parts.append((leaf, rng.choice(["", "*", "?"])))
    rng.shuffle(parts)
    rng_exchange = random.Random("doc-exchange-%d" % seed)

    def build(schema_kind: str) -> Schema:
        builder = SchemaBuilder()
        for leaf in leaves:
            builder.element(leaf, "data")
        for name in functions:
            builder.function(name, input_sources[name], output_sources[name])
        words = []
        for symbol, suffix in parts:
            if schema_kind == "exchange" and symbol in output_sources:
                stance = _exchange_part(rng_exchange, symbol,
                                        output_sources[symbol])
                words.append(stance + suffix)
            else:
                words.append(symbol + suffix)
        builder.element("root", ".".join(words))
        builder.root("root")
        return builder.build()

    sender = build("sender")
    exchange = build("exchange")

    document = InstanceGenerator(
        sender, random.Random("doc-instance-%d" % seed), max_depth=5,
        call_bias=2.0,
    ).document()

    k = 2 if nested_calls else 1
    mode = rng.choice(["safe", "auto", "auto", "possible"])
    flaky_period = rng.choice([0, 0, 0, 2, 3])
    return DocumentScenario(
        seed=seed,
        k=k,
        mode=mode,
        sender_schema=sender,
        exchange_schema=exchange,
        document=document,
        invoker_seed=seed,
        flaky_period=flaky_period,
    )


# ---------------------------------------------------------------------------
# Edit-script scenarios (incremental enforcement differential)
# ---------------------------------------------------------------------------


@dataclass
class EditScenario:
    """A mutating-document scenario: a base exchange plus edit scripts.

    ``base.document`` is wire-normalized (edit paths must survive the
    XML round-trip); each script in ``scripts`` applies against the
    document produced by the previous one.  The differential edit oracle
    (:func:`repro.conformance.differential.run_edit_scenario`) drives an
    incremental session through the scripts and checks every pass
    against a fresh full enforcement of the same source.
    """

    seed: int
    base: DocumentScenario
    scripts: Tuple[tuple, ...] = ()

    def with_scripts(self, scripts) -> "EditScenario":
        return replace(self, scripts=tuple(tuple(s) for s in scripts))


def _random_edit(rng: random.Random, root, gen: "InstanceGenerator",
                 labels: Tuple[str, ...]):
    """One random edit against the current tree (may be None: no site)."""
    from repro.doc.nodes import Element, FunctionCall, Text, children_of
    from repro.doc.paths import iter_nodes
    from repro.incremental.edits import (
        delete, insert, replace as replace_edit, update_call,
    )

    nodes = list(iter_nodes(root))
    kind = rng.choice(
        ["dup", "del", "replace-sibling", "replace-fresh",
         "insert-fresh", "update-call"]
    )
    if kind == "update-call":
        calls = [(p, n) for p, n in nodes if isinstance(n, FunctionCall)]
        if not calls:
            return None
        path, node = rng.choice(calls)
        roll = rng.random()
        if roll < 0.4:
            params = (Text(str(rng.randint(0, 99))),)
        elif roll < 0.7 and labels:
            params = (gen.element(rng.choice(labels), depth=2),)
        else:
            params = tuple(reversed(node.params)) or (
                Text(str(rng.randint(0, 99))),
            )
        return update_call(path, params)
    parents = [
        (p, n) for p, n in nodes
        if not isinstance(n, Text) and children_of(n)
    ]
    if kind == "insert-fresh":
        sites = [(p, n) for p, n in nodes if isinstance(n, Element)]
        if not (sites and labels):
            return None
        path, node = rng.choice(sites)
        index = rng.randint(0, len(children_of(node)))
        return insert(
            path + (index,), gen.element(rng.choice(labels), depth=2)
        )
    if not parents:
        return None
    path, parent = rng.choice(parents)
    kids = children_of(parent)
    index = rng.randrange(len(kids))
    if kind == "dup":
        return insert(path + (index,), kids[index])
    if kind == "del":
        return delete(path + (index,))
    if kind == "replace-sibling":
        return replace_edit(path + (index,), kids[rng.randrange(len(kids))])
    # replace-fresh
    if not labels:
        return None
    return replace_edit(
        path + (index,), gen.element(rng.choice(labels), depth=2)
    )


def fuzz_edit_scenario(seed: int) -> EditScenario:
    """The edit-script scenario fully determined by ``seed``.

    The base exchange comes from :func:`fuzz_document_scenario` (same
    seed space), wire-normalized; 1–3 scripts of 1–3 edits each are
    generated against a preview of the evolving source, so every script
    is applicable in sequence.  Edits the wire-normal-form guard rejects
    during generation are simply re-drawn.
    """
    from repro.doc.normalize import normalize_document
    from repro.incremental.edits import EditError, apply_edit

    base = fuzz_document_scenario(seed)
    base = base.with_document(normalize_document(base.document))
    rng = random.Random("edits-%d" % seed)
    gen = InstanceGenerator(
        base.sender_schema, random.Random("edits-gen-%d" % seed),
        max_depth=3, call_bias=1.0,
    )
    labels = tuple(sorted(base.sender_schema.labels()))
    preview = base.document.root
    scripts: List[tuple] = []
    for _ in range(rng.randint(1, 3)):
        batch: List = []
        wanted = rng.randint(1, 3)
        attempts = 0
        while len(batch) < wanted and attempts < 25:
            attempts += 1
            edit = _random_edit(rng, preview, gen, labels)
            if edit is None:
                continue
            try:
                preview, _ = apply_edit(preview, edit)
            except EditError:
                continue
            batch.append(edit)
        if batch:
            scripts.append(tuple(batch))
    return EditScenario(seed=seed, base=base, scripts=tuple(scripts))
