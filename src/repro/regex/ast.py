"""Immutable AST for regular expressions over labels and function names.

The alphabet is the set of *symbols*: plain strings naming element labels
or functions, plus the reserved :data:`repro.automata.symbols.DATA` symbol
that stands for atomic character data (the paper's ``data`` keyword).

Two non-standard atoms support the richer model of Section 2.1:

- :class:`AnySymbol` is a wildcard that matches any symbol, optionally
  excluding some (XML Schema's ``any`` with namespace restrictions);
- atoms whose symbol is a *function pattern name* are resolved against the
  schema's pattern definitions at automaton-construction time.

All nodes are frozen dataclasses: regexes hash, compare and can be used as
dictionary keys (the Brzozowski-derivative code relies on this).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Tuple


class Regex:
    """Base class for regex AST nodes.

    Provides operator sugar so expressions can be built in Python:
    ``a + b`` for concatenation, ``a | b`` for alternation.
    """

    def __add__(self, other: "Regex") -> "Regex":
        return seq(self, other)

    def __or__(self, other: "Regex") -> "Regex":
        return alt(self, other)

    def star(self) -> "Regex":
        """Kleene closure of this expression."""
        return star(self)

    def plus(self) -> "Regex":
        """One-or-more repetition of this expression."""
        return plus(self)

    def opt(self) -> "Regex":
        """Zero-or-one occurrence of this expression."""
        return opt(self)

    def walk(self) -> Iterator["Regex"]:
        """Yield this node and all descendants, pre-order."""
        yield self
        for child in self.children():
            yield from child.walk()

    def children(self) -> Tuple["Regex", ...]:
        """The direct sub-expressions of this node."""
        return ()


@dataclass(frozen=True)
class Epsilon(Regex):
    """Matches the empty word only."""

    def __str__(self) -> str:
        return "eps"


@dataclass(frozen=True)
class Empty(Regex):
    """Matches nothing at all (the empty language)."""

    def __str__(self) -> str:
        return "empty"


@dataclass(frozen=True)
class Atom(Regex):
    """A single symbol: an element label or a function name."""

    symbol: str

    def __str__(self) -> str:
        return self.symbol


@dataclass(frozen=True)
class AnySymbol(Regex):
    """Wildcard atom: matches any single symbol except the excluded ones.

    This models XML Schema's ``any`` wildcard extended to functions
    (Section 2.1 of the paper).  ``exclude`` lists symbols the wildcard
    must *not* match, supporting "restrict to / exclude from certain
    classes".
    """

    exclude: frozenset = field(default_factory=frozenset)

    def __str__(self) -> str:
        if not self.exclude:
            return "any"
        return "any\\{%s}" % ",".join(sorted(self.exclude))


@dataclass(frozen=True)
class Seq(Regex):
    """Concatenation of two or more sub-expressions."""

    items: Tuple[Regex, ...]

    def children(self) -> Tuple[Regex, ...]:
        return self.items

    def __str__(self) -> str:
        return ".".join(_wrap(i, for_seq=True) for i in self.items)


@dataclass(frozen=True)
class Alt(Regex):
    """Alternation (choice) between two or more sub-expressions."""

    options: Tuple[Regex, ...]

    def children(self) -> Tuple[Regex, ...]:
        return self.options

    def __str__(self) -> str:
        return "(" + " | ".join(str(o) for o in self.options) + ")"


@dataclass(frozen=True)
class Star(Regex):
    """Kleene closure: zero or more repetitions."""

    item: Regex

    def children(self) -> Tuple[Regex, ...]:
        return (self.item,)

    def __str__(self) -> str:
        return _wrap(self.item) + "*"


@dataclass(frozen=True)
class Repeat(Regex):
    """Bounded repetition, XML Schema's ``minOccurs``/``maxOccurs``.

    ``high`` is ``None`` for unbounded.  ``Repeat(r, 1, 1)`` is ``r``
    itself, ``Repeat(r, 0, None)`` is ``r*``; the smart constructors below
    normalize such cases away.
    """

    item: Regex
    low: int
    high: Optional[int]

    def children(self) -> Tuple[Regex, ...]:
        return (self.item,)

    def __str__(self) -> str:
        if self.low == 1 and self.high is None:
            return _wrap(self.item) + "+"
        if self.low == 0 and self.high == 1:
            return _wrap(self.item) + "?"
        high = "" if self.high is None else str(self.high)
        return "%s{%d,%s}" % (_wrap(self.item), self.low, high)


def _wrap(r: Regex, for_seq: bool = False) -> str:
    """Parenthesize a sub-expression when precedence requires it."""
    text = str(r)
    needs = isinstance(r, Seq) or (isinstance(r, Alt) and not text.startswith("("))
    if for_seq and isinstance(r, Alt):
        needs = False  # Alt already renders with parentheses
    return "(%s)" % text if needs else text


EPSILON = Epsilon()
EMPTY = Empty()


def atom(symbol: str) -> Regex:
    """A single-symbol expression."""
    return Atom(symbol)


def seq(*items: Regex) -> Regex:
    """Concatenation, flattening nested sequences and dropping epsilons."""
    flat: list = []
    for item in items:
        if isinstance(item, Seq):
            flat.extend(item.items)
        elif isinstance(item, Empty):
            return EMPTY
        elif not isinstance(item, Epsilon):
            flat.append(item)
    if not flat:
        return EPSILON
    if len(flat) == 1:
        return flat[0]
    return Seq(tuple(flat))


def alt(*options: Regex) -> Regex:
    """Alternation, flattening nested choices and deduplicating options."""
    flat: list = []
    seen = set()
    for option in options:
        parts = option.options if isinstance(option, Alt) else (option,)
        for part in parts:
            if isinstance(part, Empty):
                continue
            if part not in seen:
                seen.add(part)
                flat.append(part)
    if not flat:
        return EMPTY
    if len(flat) == 1:
        return flat[0]
    return Alt(tuple(flat))


def star(item: Regex) -> Regex:
    """Kleene closure with the obvious simplifications."""
    if isinstance(item, (Epsilon, Empty)):
        return EPSILON
    if isinstance(item, Star):
        return item
    return Star(item)


def plus(item: Regex) -> Regex:
    """One-or-more repetition, encoded as bounded ``Repeat``."""
    if isinstance(item, (Epsilon, Empty)):
        return item
    if isinstance(item, Star):
        return item
    return Repeat(item, 1, None)


def opt(item: Regex) -> Regex:
    """Zero-or-one occurrence, encoded as bounded ``Repeat``."""
    if isinstance(item, (Epsilon, Empty)):
        return EPSILON
    if isinstance(item, (Star, Repeat)) and getattr(item, "low", 1) == 0:
        return item
    return Repeat(item, 0, 1)


def repeat(item: Regex, low: int, high: Optional[int]) -> Regex:
    """General bounded repetition with normalization.

    Raises :class:`ValueError` when the bounds are inconsistent.
    """
    if low < 0 or (high is not None and high < low):
        raise ValueError("invalid repetition bounds {%s,%s}" % (low, high))
    if isinstance(item, Empty):
        return EPSILON if low == 0 else EMPTY
    if isinstance(item, Epsilon) or (high == 0):
        return EPSILON
    if low == 1 and high == 1:
        return item
    if low == 0 and high is None:
        return star(item)
    return Repeat(item, low, high)
