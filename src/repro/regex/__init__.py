"""Regular expressions over labels and function names.

Schemas in the paper (Definition 2) map each element label to a regular
expression over ``L ∪ F`` (labels and function names) or to the keyword
``data``, and map each function name to a pair of such expressions (its
input and output types).  This subpackage provides:

- an immutable AST for those expressions (:mod:`repro.regex.ast`),
- a text parser for the paper's notation, e.g.
  ``title.date.(Get_Temp | temp).(TimeOut | exhibit*)``
  (:mod:`repro.regex.parser`),
- classic regex analyses: nullability, first/last/follow position sets and
  Brzozowski derivatives (:mod:`repro.regex.ops`),
- the *one-unambiguity* test that underlies XML Schema's determinism
  requirement (:mod:`repro.regex.determinism`).
"""

from repro.regex.ast import (
    Alt,
    AnySymbol,
    Atom,
    Empty,
    Epsilon,
    Regex,
    Repeat,
    Seq,
    Star,
    alt,
    atom,
    opt,
    plus,
    seq,
    star,
)
from repro.regex.determinism import is_one_unambiguous
from repro.regex.ops import (
    derivative,
    first_symbols,
    matches,
    nullable,
    regex_alphabet,
)
from repro.regex.parser import parse_regex

__all__ = [
    "Alt",
    "AnySymbol",
    "Atom",
    "Empty",
    "Epsilon",
    "Regex",
    "Repeat",
    "Seq",
    "Star",
    "alt",
    "atom",
    "opt",
    "plus",
    "seq",
    "star",
    "parse_regex",
    "nullable",
    "first_symbols",
    "derivative",
    "matches",
    "regex_alphabet",
    "is_one_unambiguous",
]
