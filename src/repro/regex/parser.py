"""Parser for the paper's textual notation of type expressions.

The grammar mirrors the expressions used throughout the paper, e.g.::

    title.date.(Get_Temp | temp).(TimeOut | exhibit*)
    (exhibit | performance)*
    data
    eps

Grammar (whitespace-insensitive)::

    regex   := alt
    alt     := seq ('|' seq)*
    seq     := postfix ('.' postfix)*
    postfix := primary ('*' | '+' | '?' | '{' INT ',' (INT)? '}')*
    primary := IDENT | 'data' | 'any' | 'eps' | 'empty' | '(' alt ')'
    IDENT   := [A-Za-z_][A-Za-z0-9_\\-]*

``data`` parses to an atom over the reserved :data:`~repro.automata.symbols.DATA`
symbol; ``any`` parses to the wildcard :class:`~repro.regex.ast.AnySymbol`.
"""

from __future__ import annotations

import re as _re
from typing import List, Optional, Tuple

from repro.errors import RegexSyntaxError
from repro.regex import ast
from repro.regex.ast import Regex

_TOKEN_RE = _re.compile(
    r"\s*(?:(?P<ident>[A-Za-z_][A-Za-z0-9_\-]*)"
    r"|(?P<punct>[().|*+?{},])"
    r"|(?P<int>\d+))"
)

_KEYWORDS = {"data", "any", "eps", "empty"}


class _Tokens:
    """A tiny cursor over the token stream with one-token lookahead."""

    def __init__(self, text: str):
        self.text = text
        self.items: List[Tuple[str, str, int]] = []
        pos = 0
        while pos < len(text):
            match = _TOKEN_RE.match(text, pos)
            if match is None:
                rest = text[pos:].strip()
                if not rest:
                    break
                raise RegexSyntaxError(
                    "unexpected character %r" % rest[0], text, pos
                )
            if match.lastgroup == "ident":
                kind = "ident"
            elif match.lastgroup == "int":
                kind = "int"
            else:
                kind = match.group("punct")
            self.items.append((kind, match.group().strip(), match.start()))
            pos = match.end()
        self.index = 0

    def peek(self) -> Optional[str]:
        if self.index < len(self.items):
            return self.items[self.index][0]
        return None

    def next(self) -> Tuple[str, str, int]:
        if self.index >= len(self.items):
            raise RegexSyntaxError("unexpected end of expression", self.text)
        item = self.items[self.index]
        self.index += 1
        return item

    def expect(self, kind: str) -> Tuple[str, str, int]:
        item = self.next()
        if item[0] != kind:
            raise RegexSyntaxError(
                "expected %r but found %r" % (kind, item[1]), self.text, item[2]
            )
        return item


def parse_regex(text: str) -> Regex:
    """Parse ``text`` into a :class:`~repro.regex.ast.Regex`.

    The empty string (or pure whitespace) parses to epsilon, matching the
    convention that an element with no content model constrains its
    children to the empty sequence.

    Raises :class:`~repro.errors.RegexSyntaxError` on malformed input.
    """
    tokens = _Tokens(text)
    if tokens.peek() is None:
        return ast.EPSILON
    result = _parse_alt(tokens)
    if tokens.peek() is not None:
        kind, value, pos = tokens.next()
        raise RegexSyntaxError("trailing input %r" % value, text, pos)
    return result


def _parse_alt(tokens: _Tokens) -> Regex:
    options = [_parse_seq(tokens)]
    while tokens.peek() == "|":
        tokens.next()
        options.append(_parse_seq(tokens))
    return ast.alt(*options)


def _parse_seq(tokens: _Tokens) -> Regex:
    items = [_parse_postfix(tokens)]
    while tokens.peek() == ".":
        tokens.next()
        items.append(_parse_postfix(tokens))
    return ast.seq(*items)


def _parse_postfix(tokens: _Tokens) -> Regex:
    result = _parse_primary(tokens)
    while tokens.peek() in ("*", "+", "?", "{"):
        kind, _value, _pos = tokens.next()
        if kind == "*":
            result = ast.star(result)
        elif kind == "+":
            result = ast.plus(result)
        elif kind == "?":
            result = ast.opt(result)
        else:
            result = _parse_bounds(tokens, result)
    return result


def _parse_bounds(tokens: _Tokens, inner: Regex) -> Regex:
    low = int(tokens.expect("int")[1])
    tokens.expect(",")
    high: Optional[int] = None
    if tokens.peek() == "int":
        high = int(tokens.next()[1])
    tokens.expect("}")
    try:
        return ast.repeat(inner, low, high)
    except ValueError as exc:
        raise RegexSyntaxError(str(exc), tokens.text) from exc


def _parse_primary(tokens: _Tokens) -> Regex:
    kind, value, pos = tokens.next()
    if kind == "(":
        inner = _parse_alt(tokens)
        tokens.expect(")")
        return inner
    if kind == "ident":
        if value == "data":
            from repro.automata.symbols import DATA

            return ast.atom(DATA)
        if value == "any":
            return ast.AnySymbol()
        if value == "eps":
            return ast.EPSILON
        if value == "empty":
            return ast.EMPTY
        return ast.atom(value)
    raise RegexSyntaxError(
        "expected a symbol or '(' but found %r" % value, tokens.text, pos
    )
