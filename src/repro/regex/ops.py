"""Classic analyses over regex ASTs.

These are the building blocks used by automaton construction and by the
schema validator: nullability, first-symbol sets, Brzozowski derivatives
and a derivative-based matcher.  The matcher is the reference semantics
against which the automata modules are property-tested.
"""

from __future__ import annotations

from functools import lru_cache
from typing import FrozenSet, Iterable, Sequence, Set, Union

from repro.regex.ast import (
    Alt,
    AnySymbol,
    Atom,
    Empty,
    Epsilon,
    Regex,
    Repeat,
    Seq,
    Star,
    EMPTY,
    EPSILON,
    alt,
    repeat,
    seq,
    star,
)

#: First-set members are either concrete symbols (str) or wildcard classes.
FirstItem = Union[str, AnySymbol]


@lru_cache(maxsize=None)
def nullable(r: Regex) -> bool:
    """True iff the empty word belongs to ``lang(r)``."""
    if isinstance(r, Epsilon):
        return True
    if isinstance(r, (Empty, Atom, AnySymbol)):
        return False
    if isinstance(r, Seq):
        return all(nullable(item) for item in r.items)
    if isinstance(r, Alt):
        return any(nullable(option) for option in r.options)
    if isinstance(r, Star):
        return True
    if isinstance(r, Repeat):
        return r.low == 0 or nullable(r.item)
    raise TypeError("unknown regex node %r" % (r,))


def first_symbols(r: Regex) -> Set[FirstItem]:
    """Symbols (or wildcard classes) that can start a word of ``lang(r)``."""
    if isinstance(r, (Epsilon, Empty)):
        return set()
    if isinstance(r, Atom):
        return {r.symbol}
    if isinstance(r, AnySymbol):
        return {r}
    if isinstance(r, Seq):
        result: Set[FirstItem] = set()
        for item in r.items:
            result |= first_symbols(item)
            if not nullable(item):
                break
        return result
    if isinstance(r, Alt):
        result = set()
        for option in r.options:
            result |= first_symbols(option)
        return result
    if isinstance(r, (Star, Repeat)):
        return first_symbols(r.item)
    raise TypeError("unknown regex node %r" % (r,))


def regex_alphabet(r: Regex) -> FrozenSet[str]:
    """All concrete symbols mentioned anywhere in ``r`` (wildcards excluded)."""
    symbols: Set[str] = set()
    for node in r.walk():
        if isinstance(node, Atom):
            symbols.add(node.symbol)
        elif isinstance(node, AnySymbol):
            symbols.update(node.exclude)
    return frozenset(symbols)


def has_wildcard(r: Regex) -> bool:
    """True iff ``r`` contains an :class:`AnySymbol` wildcard atom."""
    return any(isinstance(node, AnySymbol) for node in r.walk())


def reverse(r: Regex) -> Regex:
    """The regex of the reversed language: ``lang(reverse(r)) = lang(r)^R``.

    Structural: sequences flip, everything else maps through.  Used by
    the right-to-left rewriting variant (footnote 4 of the paper).
    """
    from repro.regex.ast import repeat as _repeat

    if isinstance(r, (Epsilon, Empty, Atom, AnySymbol)):
        return r
    if isinstance(r, Seq):
        return seq(*(reverse(item) for item in reversed(r.items)))
    if isinstance(r, Alt):
        return alt(*(reverse(option) for option in r.options))
    if isinstance(r, Star):
        return star(reverse(r.item))
    if isinstance(r, Repeat):
        return _repeat(reverse(r.item), r.low, r.high)
    raise TypeError("unknown regex node %r" % (r,))


def derivative(r: Regex, symbol: str) -> Regex:
    """Brzozowski derivative: a regex for ``{w | symbol.w ∈ lang(r)}``."""
    if isinstance(r, (Epsilon, Empty)):
        return EMPTY
    if isinstance(r, Atom):
        return EPSILON if r.symbol == symbol else EMPTY
    if isinstance(r, AnySymbol):
        return EMPTY if symbol in r.exclude else EPSILON
    if isinstance(r, Seq):
        head, tail = r.items[0], seq(*r.items[1:])
        result = seq(derivative(head, symbol), tail)
        if nullable(head):
            result = alt(result, derivative(tail, symbol))
        return result
    if isinstance(r, Alt):
        return alt(*(derivative(option, symbol) for option in r.options))
    if isinstance(r, Star):
        return seq(derivative(r.item, symbol), r)
    if isinstance(r, Repeat):
        rest_low = max(0, r.low - 1)
        rest_high = None if r.high is None else r.high - 1
        if r.high is not None and r.high == 0:
            return EMPTY
        return seq(derivative(r.item, symbol), repeat(r.item, rest_low, rest_high))
    raise TypeError("unknown regex node %r" % (r,))


def matches(r: Regex, word: Sequence[str]) -> bool:
    """Reference matcher: True iff ``word`` ∈ ``lang(r)``.

    Implemented with Brzozowski derivatives; quadratic in the worst case
    but obviously correct, which is exactly what the property tests need.
    """
    current = r
    for symbol in word:
        current = derivative(current, symbol)
        if isinstance(current, Empty):
            return False
    return nullable(current)


def enumerate_words(r: Regex, max_length: int) -> Iterable[tuple]:
    """Yield every word of ``lang(r)`` up to ``max_length``, shortest first.

    Wildcard atoms are expanded to the single placeholder symbol
    ``"#any"``; callers that need concrete symbols should concretize the
    regex against an alphabet first.  Useful in tests and for the
    representative-document construction of Section 6.
    """
    from repro.automata.symbols import ANY_PLACEHOLDER

    frontier = [((), r)]
    seen = {((), r)}
    while frontier:
        next_frontier = []
        for word, residual in frontier:
            if nullable(residual):
                yield word
            if len(word) >= max_length:
                continue
            symbols: Set[str] = set()
            for item in first_symbols(residual):
                symbols.add(ANY_PLACEHOLDER if isinstance(item, AnySymbol) else item)
            for symbol in sorted(symbols):
                new = derivative(residual, symbol)
                if isinstance(new, Empty):
                    continue
                entry = (word + (symbol,), new)
                if entry not in seen:
                    seen.add(entry)
                    next_frontier.append(entry)
        frontier = next_frontier
