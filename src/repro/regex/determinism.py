"""One-unambiguity: XML Schema's determinism requirement.

XML Schema (like DTDs) only admits *one-unambiguous* content models:
while matching a word left to right, each next symbol determines a unique
position of the expression, without lookahead.  The classic
characterization (Brüggemann-Klein & Wood) is that the expression's
Glushkov automaton is deterministic.

The paper leans on this (Section 4, "Complexity"): for one-unambiguous
target types, complementation needs no subset construction, so safe
rewriting stays polynomial.  We reuse the Glushkov construction and
test pairwise guard overlap, including wildcard guards.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.regex.ast import AnySymbol, Regex


def _guards_overlap(left, right) -> bool:
    """Can some concrete symbol match both guards?

    Two wildcards always overlap (their exclusion sets are finite while
    the symbol universe is not).  A wildcard overlaps a concrete symbol
    unless it excludes it.
    """
    left_wild = isinstance(left, AnySymbol)
    right_wild = isinstance(right, AnySymbol)
    if left_wild and right_wild:
        return True
    if left_wild:
        return right not in left.exclude
    if right_wild:
        return left not in right.exclude
    return left == right


def find_ambiguity(r: Regex) -> Optional[Tuple[int, object, object]]:
    """Locate a witness of non-one-unambiguity, or None if deterministic.

    Returns ``(state, guard_a, guard_b)`` for the first Glushkov state with
    two overlapping outgoing guards leading to distinct positions.
    """
    from repro.automata.glushkov import glushkov_nfa

    nfa = glushkov_nfa(r)
    for state in range(nfa.n_states):
        edges: List[Tuple[object, int]] = nfa.edges_from(state)
        for i, (guard_a, target_a) in enumerate(edges):
            for guard_b, target_b in edges[i + 1:]:
                if target_a != target_b and _guards_overlap(guard_a, guard_b):
                    return (state, guard_a, guard_b)
    return None


def is_one_unambiguous(r: Regex) -> bool:
    """True iff ``r`` is one-unambiguous (deterministic per XML Schema)."""
    return find_ambiguity(r) is None
