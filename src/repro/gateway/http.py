"""A small asyncio HTTP/1.1 layer — stdlib only, by design.

The gateway must not grow runtime dependencies, so this module
implements the slice of HTTP/1.1 the exchange protocol needs and
nothing more: request line + headers + ``Content-Length`` or chunked
bodies in, fixed-length or chunked responses out (the streaming
exchange replies chunk-by-chunk with its receipt in trailers),
keep-alive by default (the load generator reuses connections), no TLS.

Parsing is paranoid in the gateway's favour: header and body limits are
enforced *while reading* (a peer cannot make the gateway buffer an
unbounded request — a chunked upload is rejected the moment its running
byte count crosses the cap, long before it completes), and every
malformed input maps to a typed
:class:`~repro.gateway.errors.GatewayError` rather than a stack trace.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import AsyncIterator, Callable, Dict, Optional, Tuple
from urllib.parse import parse_qsl, unquote, urlsplit

from repro.gateway.errors import BadRequestError, PayloadTooLargeError

#: Upper bound on the request line plus all headers, in bytes.
MAX_HEADER_BYTES = 16 * 1024
#: Default upper bound on request bodies (overridable per gateway).
DEFAULT_MAX_BODY_BYTES = 4 * 1024 * 1024

REASONS = {
    200: "OK", 201: "Created", 204: "No Content",
    400: "Bad Request", 404: "Not Found", 405: "Method Not Allowed",
    409: "Conflict", 413: "Payload Too Large", 422: "Unprocessable Entity",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable", 504: "Gateway Timeout",
}


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: Dict[str, str] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "keep-alive").lower() != "close"

    def json(self) -> dict:
        """The body as a JSON object; typed error on anything else."""
        try:
            value = json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise BadRequestError("request body is not valid JSON: %s" % exc)
        if not isinstance(value, dict):
            raise BadRequestError("request body must be a JSON object")
        return value


@dataclass
class Response:
    """One HTTP response about to be written."""

    status: int = 200
    body: bytes = b""
    content_type: str = "application/json"
    headers: Dict[str, str] = field(default_factory=dict)

    @staticmethod
    def json(payload: dict, status: int = 200) -> "Response":
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        return Response(status=status, body=body)

    @staticmethod
    def text(content: str, status: int = 200,
             content_type: str = "text/plain; charset=utf-8") -> "Response":
        return Response(status=status, body=content.encode("utf-8"),
                        content_type=content_type)

    @staticmethod
    def binary(blob: bytes, status: int = 200) -> "Response":
        return Response(status=status, body=blob,
                        content_type="application/octet-stream")


@dataclass
class StreamingResponse:
    """A response whose body is produced while it is being written.

    ``chunks`` yields body byte chunks (written with chunked
    transfer-encoding as they arrive); ``trailers`` is called once the
    iterator is exhausted and its entries are sent as HTTP trailers —
    the streaming exchange's receipt travels there, after the last body
    byte.  Callers that may fail mid-stream must signal it via a
    trailer: the status line is long gone by then.
    """

    chunks: AsyncIterator[bytes]
    status: int = 200
    content_type: str = "application/xml"
    headers: Dict[str, str] = field(default_factory=dict)
    trailers: Callable[[], Dict[str, str]] = dict


async def read_request(
    reader: asyncio.StreamReader,
    max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
) -> Optional[Request]:
    """Parse one request off the stream; ``None`` on clean EOF.

    Raises :class:`BadRequestError` for malformed syntax and
    :class:`PayloadTooLargeError` when ``Content-Length`` exceeds the
    body limit — checked *before* the body is read, so oversized uploads
    are rejected without buffering them.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean close between requests (keep-alive end)
        raise BadRequestError("connection closed mid-request")
    except asyncio.LimitOverrunError:
        raise BadRequestError("request head exceeds %d bytes" % MAX_HEADER_BYTES)
    if len(head) > MAX_HEADER_BYTES:
        raise BadRequestError("request head exceeds %d bytes" % MAX_HEADER_BYTES)

    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise BadRequestError("malformed request line %r" % lines[0][:80])
    method, target = parts[0].upper(), parts[1]
    split = urlsplit(target)
    query = {key: value for key, value in parse_qsl(split.query)}

    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        if ":" not in line:
            raise BadRequestError("malformed header line %r" % line[:80])
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()

    encoding = headers.get("transfer-encoding", "").lower()
    if encoding and encoding != "chunked":
        raise BadRequestError(
            "unsupported transfer encoding %r" % encoding
        )
    if encoding == "chunked":
        body = await read_chunked_body(reader, max_body_bytes)
        return Request(
            method=method, path=unquote(split.path), query=query,
            headers=headers, body=body,
        )

    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError:
        raise BadRequestError("malformed Content-Length %r" % length_text)
    if length < 0:
        raise BadRequestError("negative Content-Length")
    if length > max_body_bytes:
        raise PayloadTooLargeError(
            "request body of %d bytes exceeds the %d byte limit"
            % (length, max_body_bytes)
        )

    body = b""
    if length:
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise BadRequestError("connection closed mid-body")
    return Request(
        method=method, path=unquote(split.path), query=query,
        headers=headers, body=body,
    )


async def read_chunked_body(
    reader: asyncio.StreamReader, max_body_bytes: int
) -> bytes:
    """De-chunk one request body, capping the running byte count.

    The cap is checked on every chunk-size line — an oversized streaming
    upload is refused as soon as its declared bytes cross the limit,
    without waiting for (or buffering) the rest of the stream.
    """
    parts = []
    total = 0
    while True:
        try:
            size_line = await reader.readuntil(b"\r\n")
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            raise BadRequestError("connection closed mid-chunk")
        size_text = size_line.strip().split(b";", 1)[0]  # drop extensions
        try:
            size = int(size_text, 16)
        except ValueError:
            raise BadRequestError(
                "malformed chunk size %r" % size_text[:40]
            )
        if size < 0:
            raise BadRequestError("negative chunk size")
        total += size
        if total > max_body_bytes:
            raise PayloadTooLargeError(
                "chunked body exceeds the %d byte limit (aborted after "
                "%d declared bytes)" % (max_body_bytes, total)
            )
        if size == 0:
            # Trailer section: consume until the blank line.
            while True:
                try:
                    line = await reader.readuntil(b"\r\n")
                except (asyncio.IncompleteReadError,
                        asyncio.LimitOverrunError):
                    raise BadRequestError("connection closed mid-trailer")
                if line in (b"\r\n", b""):
                    break
            return b"".join(parts)
        try:
            chunk = await reader.readexactly(size + 2)  # chunk + CRLF
        except asyncio.IncompleteReadError:
            raise BadRequestError("connection closed mid-chunk")
        if chunk[-2:] != b"\r\n":
            raise BadRequestError("chunk not terminated by CRLF")
        parts.append(chunk[:-2])


async def write_response(
    writer: asyncio.StreamWriter, response, keep_alive: bool
) -> None:
    """Serialize one response (fixed Content-Length framing) and flush."""
    if isinstance(response, StreamingResponse):
        await write_streaming_response(writer, response, keep_alive)
        return
    reason = REASONS.get(response.status, "Unknown")
    head = [
        "HTTP/1.1 %d %s" % (response.status, reason),
        "Content-Type: %s" % response.content_type,
        "Content-Length: %d" % len(response.body),
        "Connection: %s" % ("keep-alive" if keep_alive else "close"),
    ]
    for name, value in sorted(response.headers.items()):
        head.append("%s: %s" % (name, value))
    writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))
    writer.write(response.body)
    await writer.drain()


async def write_streaming_response(
    writer: asyncio.StreamWriter,
    response: StreamingResponse,
    keep_alive: bool,
) -> None:
    """Write a chunked response, flushing each body chunk as it arrives.

    Trailers are sent after the terminal zero-size chunk — the receiver
    reads them once the body is complete, which is exactly when the
    streaming exchange knows its receipt.
    """
    reason = REASONS.get(response.status, "Unknown")
    head = [
        "HTTP/1.1 %d %s" % (response.status, reason),
        "Content-Type: %s" % response.content_type,
        "Transfer-Encoding: chunked",
        "Connection: %s" % ("keep-alive" if keep_alive else "close"),
    ]
    for name, value in sorted(response.headers.items()):
        head.append("%s: %s" % (name, value))
    try:
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))
        async for chunk in response.chunks:
            if not chunk:
                continue
            writer.write(b"%x\r\n" % len(chunk) + chunk + b"\r\n")
            await writer.drain()
        trailer_lines = "".join(
            "%s: %s\r\n" % (name, value)
            for name, value in sorted(response.trailers().items())
        )
        writer.write(b"0\r\n" + trailer_lines.encode("latin-1") + b"\r\n")
        await writer.drain()
    finally:
        # Closing the iterator on *any* exit lets the producer see the
        # client is gone (GeneratorExit reaches its cleanup handlers)
        # instead of blocking on a queue nobody drains.
        aclose = getattr(response.chunks, "aclose", None)
        if aclose is not None:
            await aclose()


def parse_chunked_response(
    blob: bytes,
) -> Tuple[int, Dict[str, str], bytes, Dict[str, str]]:
    """Parse a complete chunked response buffer, trailers included.

    Returns ``(status, headers, body, trailers)`` — the client side of
    the streaming exchange (and its tests).
    """
    head, _, rest = blob.partition(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ", 2)
    if len(parts) < 2 or not parts[0].startswith("HTTP/1."):
        raise ValueError("malformed status line %r" % lines[0][:80])
    status = int(parts[1])
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if ":" in line:
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
    if headers.get("transfer-encoding", "").lower() != "chunked":
        raise ValueError("response is not chunked")
    body_parts = []
    while True:
        size_line, _, rest = rest.partition(b"\r\n")
        size = int(size_line.split(b";", 1)[0], 16)
        if size == 0:
            break
        body_parts.append(rest[:size])
        rest = rest[size + 2:]  # skip the chunk's CRLF
    trailers: Dict[str, str] = {}
    for line in rest.decode("latin-1").split("\r\n"):
        if ":" in line:
            name, _, value = line.partition(":")
            trailers[name.strip().lower()] = value.strip()
    return status, headers, b"".join(body_parts), trailers


def parse_response(blob: bytes) -> Tuple[int, Dict[str, str], bytes]:
    """Parse a complete response buffer — the client side of the wire.

    Returns ``(status, headers, body)``; used by
    :class:`repro.gateway.client.GatewayClient` and the tests.
    """
    head, _, rest = blob.partition(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ", 2)
    if len(parts) < 2 or not parts[0].startswith("HTTP/1."):
        raise ValueError("malformed status line %r" % lines[0][:80])
    status = int(parts[1])
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if ":" in line:
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
    return status, headers, rest
