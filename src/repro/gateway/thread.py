"""Run a :class:`~repro.gateway.service.Gateway` on a background thread.

The gateway is an asyncio application; tests, benchmarks, and
synchronous embedders need it running *next to* their own code.
:class:`GatewayThread` owns a dedicated event loop on a daemon thread:
``start()`` blocks until the port is bound and returns it, ``stop()``
performs the gateway's graceful drain from outside the loop.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Optional

from repro.gateway.service import Gateway, GatewayConfig


class GatewayThread:
    """One gateway on its own event loop, driven from another thread."""

    def __init__(self, config: Optional[GatewayConfig] = None, **kwargs):
        self.gateway = Gateway(config=config, **kwargs)
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._started = threading.Event()
        self._stopped = threading.Event()
        self._stop_requested: Optional[asyncio.Event] = None
        self._drain = True
        self._startup_error: Optional[BaseException] = None

    @property
    def port(self) -> Optional[int]:
        return self.gateway.port

    @property
    def host(self) -> str:
        return self.gateway.config.host

    def start(self, timeout: float = 10.0) -> int:
        """Launch the loop thread; blocks until bound, returns the port."""
        self._thread = threading.Thread(
            target=self._run, name="gateway-loop", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout):
            raise RuntimeError("gateway failed to start within %ss" % timeout)
        if self._startup_error is not None:
            raise RuntimeError(
                "gateway failed to start: %s" % self._startup_error
            )
        return self.gateway.port

    def stop(self, drain: bool = True, timeout: float = 30.0) -> None:
        """Graceful (or abrupt) shutdown from the caller's thread."""
        if self._loop is None or self._stop_requested is None:
            return
        self._drain = drain
        try:
            self._loop.call_soon_threadsafe(self._stop_requested.set)
        except RuntimeError:
            return  # loop already closed
        self._stopped.wait(timeout)
        if self._thread is not None:
            self._thread.join(timeout)

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # surface startup failures to start()
            self._startup_error = exc
            self._started.set()
        finally:
            self._stopped.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_requested = asyncio.Event()
        await self.gateway.start()
        self._started.set()
        await self._stop_requested.wait()
        await self.gateway.stop(drain=self._drain)

    def __enter__(self) -> "GatewayThread":
        self.start()
        return self

    def __exit__(self, _exc_type, _exc, _tb) -> None:
        self.stop()
