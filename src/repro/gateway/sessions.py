"""The gateway's live-session store for mutating documents.

The edit-script exchange mode keeps one
:class:`~repro.incremental.session.EnforcementSession` per document id:
the peer opens a session by POSTing the full document once, then ships
edit scripts that re-enforce incrementally against the warm caches.
This module is the bounded registry those sessions live in:

- **LRU bound** — at most ``limit`` sessions are resident; opening one
  more evicts the least-recently-used session (its compile-cache
  artifacts survive — they are interned gateway-wide — but the subtree
  memo and materialization cache die with it).  Evictions surface as
  ``repro_gateway_incremental_total{event="evicted"}`` and a peer whose
  session was evicted gets the typed 404 ``unknown-session``, telling
  it to re-open by re-sending the document;
- **per-entry lock** — enforcement runs on the thread pool, and an
  :class:`~repro.incremental.session.EnforcementSession` is stateful,
  so concurrent scripts for one document id serialize on the entry's
  lock while different documents proceed in parallel;
- the store itself is a small thread-safe LRU (lookups bump recency),
  deliberately independent of the admission controller: admission
  bounds *work in flight*, the store bounds *state at rest*.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import List, Optional


@dataclass
class SessionEntry:
    """One resident session plus the coordinates it was opened under."""

    document_id: str
    sender: str
    receiver: str
    session: object  # EnforcementSession (typed loosely: no import cycle)
    mode: str
    k: int
    seed: int
    lock: threading.Lock = field(default_factory=threading.Lock)


class SessionStore:
    """A thread-safe LRU of :class:`SessionEntry`, bounded by ``limit``."""

    def __init__(self, limit: int = 64):
        self.limit = max(1, int(limit))
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, SessionEntry]" = OrderedDict()
        self.evicted_total = 0
        self.opened_total = 0

    def put(self, entry: SessionEntry) -> Optional[SessionEntry]:
        """Install (or replace) a session; returns the evicted entry, if
        the LRU bound pushed one out."""
        with self._lock:
            self._entries.pop(entry.document_id, None)
            self._entries[entry.document_id] = entry
            self.opened_total += 1
            if len(self._entries) > self.limit:
                _, evicted = self._entries.popitem(last=False)
                self.evicted_total += 1
                return evicted
        return None

    def get(self, document_id: str) -> Optional[SessionEntry]:
        """Look up a session, bumping its recency; None when absent."""
        with self._lock:
            entry = self._entries.get(document_id)
            if entry is not None:
                self._entries.move_to_end(document_id)
            return entry

    def remove(self, document_id: str) -> Optional[SessionEntry]:
        with self._lock:
            return self._entries.pop(document_id, None)

    def ids(self) -> List[str]:
        with self._lock:
            return list(self._entries)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
