"""Request admission control and backpressure for the gateway.

Every exchange request passes one :meth:`AdmissionController.admit`
gate before any parsing of documents or scheduling of enforcement work:

- a **bounded queue** — at most ``queue_limit`` requests admitted
  (queued + running) gateway-wide; excess load is shed with a typed
  503 ``queue-full`` instead of growing an unbounded backlog;
- a **per-peer concurrency limit** — a chatty peer saturates its own
  slice (429 ``peer-limit``), not the gateway;
- the **circuit breaker** state machine from
  :mod:`repro.services.resilience`, one breaker per sending peer:
  repeated enforcement *failures* open the breaker and subsequent
  requests fail fast with 503 ``breaker-open`` until the cooldown
  half-opens it for a probe.  The breaker guards the expensive
  analysis pipeline the way the invoker's breakers guard dead service
  endpoints.

Shedding decisions are counted under ``repro_gateway_shed_total`` by
reason, and the live queue depth / per-peer occupancy surface as
gauges, so the load benchmark's shed rate comes straight off
``/metrics``.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional

from repro.obs import context as obs
from repro.gateway.errors import (
    BreakerOpenError,
    PeerBusyError,
    QueueFullError,
    ShuttingDownError,
)
from repro.services.resilience import CircuitBreaker, WallClock


class Admission:
    """One admitted request's ticket; ``release`` exactly once."""

    def __init__(self, controller: "AdmissionController", peer: str):
        self._controller = controller
        self.peer = peer
        self._released = False

    def release(self, success: bool = True) -> None:
        if self._released:
            return
        self._released = True
        self._controller._release(self.peer, success)

    def __enter__(self) -> "Admission":
        return self

    def __exit__(self, exc_type, _exc, _tb) -> None:
        self.release(success=exc_type is None)


class AdmissionController:
    """Bounded admission with per-peer limits and per-peer breakers.

    Thread-safe: tickets are acquired on the event loop but released
    from enforcement callbacks that may run on executor threads.

    Args:
        queue_limit: gateway-wide cap on admitted (queued + running)
            requests.
        default_per_peer: per-peer inflight cap for peers whose record
            does not set one.
        breaker_threshold / breaker_cooldown: forwarded to each peer's
            :class:`CircuitBreaker`.
        clock: time source for breaker cooldowns (``WallClock`` default;
            tests inject :class:`~repro.services.resilience.SimulatedClock`).
    """

    def __init__(
        self,
        queue_limit: int = 256,
        default_per_peer: int = 8,
        breaker_threshold: int = 5,
        breaker_cooldown: float = 1.0,
        clock=None,
    ):
        self.queue_limit = max(1, int(queue_limit))
        self.default_per_peer = max(1, int(default_per_peer))
        self.breaker_threshold = breaker_threshold
        self.breaker_cooldown = breaker_cooldown
        self.clock = clock if clock is not None else WallClock()
        self._lock = threading.Lock()
        self._admitted = 0
        self._per_peer: Dict[str, int] = {}
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._draining = False
        self.shed_counts: Dict[str, int] = {}
        self.admitted_total = 0

    # -- introspection ------------------------------------------------------

    @property
    def inflight(self) -> int:
        with self._lock:
            return self._admitted

    def peer_inflight(self, peer: str) -> int:
        with self._lock:
            return self._per_peer.get(peer, 0)

    def breaker_for(self, peer: str) -> CircuitBreaker:
        with self._lock:
            breaker = self._breakers.get(peer)
            if breaker is None:
                breaker = CircuitBreaker(
                    threshold=self.breaker_threshold,
                    cooldown=self.breaker_cooldown,
                )
                self._breakers[peer] = breaker
            return breaker

    # -- the gate -----------------------------------------------------------

    def drain(self) -> None:
        """Stop admitting; in-flight tickets keep their slots."""
        with self._lock:
            self._draining = True

    def admit(self, peer: str, per_peer_limit: Optional[int] = None) -> Admission:
        """Admit one request for ``peer`` or raise a typed shed error."""
        breaker = self.breaker_for(peer)
        limit = per_peer_limit or self.default_per_peer
        with self._lock:
            if self._draining:
                self._shed_locked("shutting-down", peer)
                raise ShuttingDownError("gateway is draining")
            if self._admitted >= self.queue_limit:
                self._shed_locked("queue-full", peer)
                raise QueueFullError(
                    "admission queue full (%d in flight, limit %d)"
                    % (self._admitted, self.queue_limit)
                )
            if self._per_peer.get(peer, 0) >= limit:
                self._shed_locked("peer-limit", peer)
                raise PeerBusyError(
                    "peer %r already has %d request(s) in flight (limit %d)"
                    % (peer, self._per_peer.get(peer, 0), limit)
                )
            if not breaker.allow(self.clock.now()):
                self._shed_locked("breaker-open", peer)
                raise BreakerOpenError(
                    "circuit breaker open for peer %r "
                    "(%d consecutive enforcement failure(s))"
                    % (peer, breaker.consecutive_failures)
                )
            self._admitted += 1
            self.admitted_total += 1
            self._per_peer[peer] = self._per_peer.get(peer, 0) + 1
        self._gauges()
        return Admission(self, peer)

    def _release(self, peer: str, success: bool) -> None:
        breaker = self.breaker_for(peer)
        opened = 0
        with self._lock:
            self._admitted = max(0, self._admitted - 1)
            count = self._per_peer.get(peer, 0) - 1
            if count <= 0:
                self._per_peer.pop(peer, None)
            else:
                self._per_peer[peer] = count
            opens_before = breaker.opens
            if success:
                breaker.record_success()
            else:
                breaker.record_failure(self.clock.now())
            opened = breaker.opens - opens_before
        if opened:
            metrics = obs.metrics()
            if metrics.enabled:
                metrics.counter(
                    "repro_gateway_breaker_transitions_total",
                    "Per-peer gateway breaker state transitions",
                ).inc(opened, to="open", peer=peer)
        self._gauges()

    # -- accounting ---------------------------------------------------------

    def _shed_locked(self, reason: str, peer: str) -> None:
        self.shed_counts[reason] = self.shed_counts.get(reason, 0) + 1
        metrics = obs.metrics()
        if metrics.enabled:
            metrics.counter(
                "repro_gateway_shed_total",
                "Exchange requests shed by admission control",
            ).inc(reason=reason, peer=peer)

    def _gauges(self) -> None:
        metrics = obs.metrics()
        if metrics.enabled:
            metrics.gauge(
                "repro_gateway_inflight",
                "Admitted exchange requests currently queued or running",
            ).set(self.inflight)

    @property
    def shed_total(self) -> int:
        with self._lock:
            return sum(self.shed_counts.values())
