"""Closed-loop load benchmark for the exchange gateway (E25).

Two phases, each against a gateway running in-process on an ephemeral
port (:class:`~repro.gateway.thread.GatewayThread`):

1. **Throughput/latency** — N concurrent clients (one connection each)
   all fire one exchange request at a shared starting gun, so N
   requests are genuinely in flight together.  The admission queue is
   sized to admit all of them; the thread-pool bridge meters them
   through enforcement.  Per-request latencies feed a P² quantile
   sketch (p50/p95/p99), and the gateway's own
   ``repro_gateway_request_seconds`` histogram is read back for the
   server-side view.  Afterwards every response document is compared
   **byte-for-byte** against the direct library path (same schemas,
   same per-call-seeded sampling invoker, no HTTP) — the gateway must
   be a transport, never a semantic layer.

2. **Overload/shedding** — a second gateway with a deliberately tiny
   admission queue, a single enforcement worker, and artificial
   per-call service latency; a burst larger than the queue must shed
   with typed 429/503 errors.  The shed *rate* is wall-clock dependent
   and therefore recorded under a ``_fraction`` key (stripped by the
   trajectory differ); that shedding happened at all is the
   deterministic claim.

The deterministic payload — request counts, agreement booleans, and
the ``repro_work_total`` snapshot of phase 1 — is what
``repro bench gateway_load`` diffs across the trajectory.  Phase 1
warms the compilation cache with one sequential request first, so the
storm's work counters cannot race duplicate artifact builds.
"""

from __future__ import annotations

import asyncio
import time
from typing import Dict, List, Optional, Tuple

from repro.axml.enforcement import SchemaEnforcer
from repro.doc.document import Document
from repro.gateway.client import GatewayClient, GatewayReply
from repro.gateway.invoke import sampling_invoker
from repro.gateway.service import GatewayConfig
from repro.gateway.thread import GatewayThread
from repro.obs.metrics import work_snapshot
from repro.obs.quantile import QuantileSketch
from repro.schema.patterns import allow_only
from repro.workloads import newspaper
from repro.xschema.compile import compile_xschema
from repro.xschema.parser import parse_xschema
from repro.xschema.writer import schema_to_xschema

#: The functions of the newspaper scenario (the sender's obligations).
OBLIGATIONS = ("Get_Temp", "TimeOut")


def _scenario() -> Tuple[str, str, str]:
    """(sender xsd, receiver xsd, document xml) — Figure 2.a into (**)."""
    sender_xsd = schema_to_xschema(newspaper.schema_star())
    receiver_xsd = schema_to_xschema(newspaper.schema_star2())
    document_xml = newspaper.document().to_xml()
    return sender_xsd, receiver_xsd, document_xml


def direct_enforcement(
    sender_xsd: str, receiver_xsd: str, document_xml: str, seed: int,
    compile_cache=None,
) -> str:
    """The library path the gateway must match byte-for-byte.

    Schemas are compiled from the same XML Schema_int *text* a peer
    registers, and calls are served by the same per-call-seeded
    sampling invoker, so any byte of divergence is the gateway's fault.
    """
    sender = compile_xschema(parse_xschema(sender_xsd))
    receiver = compile_xschema(parse_xschema(receiver_xsd))
    enforcer = SchemaEnforcer(
        target_schema=receiver,
        sender_schema=sender,
        k=1,
        mode="safe",
        policy=allow_only(OBLIGATIONS),
        compile_cache=compile_cache,
    )
    outcome = enforcer.enforce_document(
        Document.from_xml(document_xml), sampling_invoker(sender, seed)
    )
    if not outcome.ok:
        raise AssertionError("direct enforcement failed: %s" % outcome.error)
    return outcome.document.to_xml()


async def _register_peers(
    host: str, port: int, sender_xsd: str, receiver_xsd: str,
    max_inflight: int,
) -> None:
    client = GatewayClient(host, port)
    try:
        reply = await client.register_peer(
            "alice", sender_xsd, obligations=OBLIGATIONS,
            max_inflight=max_inflight,
        )
        assert reply.status == 201, reply.body
        reply = await client.register_peer(
            "bob", receiver_xsd, max_inflight=max_inflight
        )
        assert reply.status == 201, reply.body
    finally:
        await client.close()


async def _storm(
    host: str, port: int, document_xml: str, requests: int,
) -> List[Tuple[int, float, GatewayReply]]:
    """Fire ``requests`` exchanges truly concurrently; one connection each.

    Every worker connects first, then waits on a starting gun, so the
    whole cohort is in flight together (the ≥N-concurrent claim).
    Returns ``(seed, latency_seconds, reply)`` per request.
    """
    gun = asyncio.Event()
    results: List[Tuple[int, float, GatewayReply]] = []

    async def one(seed: int) -> None:
        client = GatewayClient(host, port)
        try:
            await client._connect()
            await gun.wait()
            started = time.perf_counter()
            reply = await client.exchange(
                "alice", "bob", document_xml, seed=seed
            )
            results.append((seed, time.perf_counter() - started, reply))
        finally:
            await client.close()

    tasks = [asyncio.create_task(one(seed)) for seed in range(requests)]
    await asyncio.sleep(0)  # let every task reach the gun
    gun.set()
    await asyncio.gather(*tasks)
    return results


async def _burst(
    host: str, port: int, document_xml: str, requests: int,
) -> List[GatewayReply]:
    gun = asyncio.Event()
    replies: List[GatewayReply] = []

    async def one(seed: int) -> None:
        client = GatewayClient(host, port)
        try:
            await client._connect()
            await gun.wait()
            replies.append(await client.exchange(
                "alice", "bob", document_xml, seed=seed
            ))
        finally:
            await client.close()

    tasks = [asyncio.create_task(one(seed)) for seed in range(requests)]
    await asyncio.sleep(0)
    gun.set()
    await asyncio.gather(*tasks)
    return replies


def run_load(smoke: bool = False,
             requests: Optional[int] = None,
             pool_size: int = 8) -> dict:
    """Run both phases; returns the ``BENCH_gateway_load`` payload."""
    total = requests if requests is not None else (60 if smoke else 500)
    sender_xsd, receiver_xsd, document_xml = _scenario()

    # ---- phase 1: concurrent throughput, byte-identical outcomes --------
    config = GatewayConfig(
        queue_limit=total + 16,
        per_peer_limit=total + 16,
        pool_size=pool_size,
    )
    harness = GatewayThread(config)
    harness.start()
    try:
        host, port = harness.host, harness.port
        asyncio.run(_register_peers(
            host, port, sender_xsd, receiver_xsd, max_inflight=total + 16,
        ))

        async def warmup() -> None:
            client = GatewayClient(host, port)
            try:
                reply = await client.exchange(
                    "alice", "bob", document_xml, seed=0
                )
                assert reply.ok, reply.body
            finally:
                await client.close()

        asyncio.run(warmup())

        started = time.perf_counter()
        results = asyncio.run(_storm(host, port, document_xml, total))
        storm_seconds = time.perf_counter() - started

        sketch = QuantileSketch()
        for _seed, latency, _reply in results:
            sketch.observe(latency)
        completed = sum(1 for _s, _l, reply in results if reply.ok)
        histogram = harness.gateway.metrics.get(
            "repro_gateway_request_seconds"
        )
        server_p99 = (
            histogram.quantile(0.99, route="POST /exchange")
            if histogram is not None else None
        )
        work: Dict[str, float] = work_snapshot(harness.gateway.metrics)
        admitted = harness.gateway.admission.admitted_total
        shed_main = harness.gateway.admission.shed_total
    finally:
        harness.stop(drain=True)

    # ---- byte-identical check vs. the direct library path ----------------
    from repro.compile.cache import CompilationCache

    direct_cache = CompilationCache()
    mismatches = 0
    for seed, _latency, reply in results:
        if not reply.ok:
            continue
        expected = direct_enforcement(
            sender_xsd, receiver_xsd, document_xml, seed,
            compile_cache=direct_cache,
        )
        if reply.json()["document"] != expected:
            mismatches += 1

    # ---- phase 2: overload must shed, typed -------------------------------
    overload_requests = 40 if smoke else 80
    overload_queue = 8
    overload_config = GatewayConfig(
        queue_limit=overload_queue,
        per_peer_limit=overload_requests,
        pool_size=1,
        invoke_delay=0.02,
    )
    overload = GatewayThread(overload_config)
    overload.start()
    try:
        asyncio.run(_register_peers(
            overload.host, overload.port, sender_xsd, receiver_xsd,
            max_inflight=overload_requests,
        ))
        replies = asyncio.run(_burst(
            overload.host, overload.port, document_xml, overload_requests
        ))
        shed = [reply for reply in replies if reply.status in (429, 503)]
        shed_codes = sorted({reply.error_code for reply in shed})
        overload_ok = sum(1 for reply in replies if reply.ok)
    finally:
        overload.stop(drain=True)

    return {
        "benchmark": "gateway_load",
        "experiment": "E25",
        "hot_path": "concurrent POST /exchange storm through admission, "
                    "thread-pool bridge and schema enforcement; overload "
                    "burst against a tiny admission queue",
        "requests": total,
        "concurrency": total,
        "pool_size": pool_size,
        "completed": completed,
        "admitted": admitted,
        "main_phase_shed": shed_main,
        "all_accepted": completed == total,
        "byte_identical": mismatches == 0,
        "mismatches": mismatches,
        "storm_seconds": round(storm_seconds, 6),
        "client_p50_seconds": round(sketch.quantile(0.5) or 0.0, 6),
        "client_p95_seconds": round(sketch.quantile(0.95) or 0.0, 6),
        "client_p99_seconds": round(sketch.quantile(0.99) or 0.0, 6),
        "server_p99_seconds": round(server_p99 or 0.0, 6),
        "overload_requests": overload_requests,
        "overload_queue_limit": overload_queue,
        "overload_completed_min": overload_queue <= overload_ok,
        "shed_any": len(shed) > 0,
        "shed_typed": bool(shed) and all(
            code in ("queue-full", "peer-limit", "breaker-open")
            for code in shed_codes
        ),
        "overload_shed_fraction": round(len(shed) / overload_requests, 6),
        "work": {"default": work},
    }
