"""Typed errors of the exchange gateway.

Every failure the gateway can hand a remote peer is a
:class:`GatewayError` carrying a machine-readable ``code`` and the HTTP
``status`` it maps to, so clients never have to parse prose: the wire
payload is ``{"error": <code>, "detail": <text>, "status": <int>}``
(:meth:`GatewayError.payload`), and each code increments exactly one
``repro_gateway_errors_total{code=...}`` counter — the contract the
failure-mode tests pin down.
"""

from __future__ import annotations

from repro.errors import ReproError


class GatewayError(ReproError):
    """Base class for request failures the gateway reports to peers."""

    #: HTTP status the error maps to on the wire.
    status = 500
    #: Machine-readable error code (stable across releases).
    code = "internal"

    def payload(self) -> dict:
        """The JSON body the gateway sends for this error."""
        return {
            "error": self.code,
            "detail": str(self) or self.code,
            "status": self.status,
        }


class BadRequestError(GatewayError):
    """The request body or parameters could not be understood."""

    status = 400
    code = "bad-request"


class UnknownRouteError(GatewayError):
    """No handler is mounted at the requested method/path."""

    status = 404
    code = "unknown-route"


class UnknownGatewayPeerError(GatewayError):
    """A request names a peer the registry has never seen."""

    status = 404
    code = "unknown-peer"


class ObligationConflictError(GatewayError):
    """Two peers claim schema-obligation ownership of one function.

    "Distributed XML Design" makes typing a multi-peer property: each
    function's schema obligations must have exactly one owner, so a
    registration that re-claims an already-owned function is rejected
    instead of silently re-homing the obligation.
    """

    status = 409
    code = "obligation-conflict"


class UnknownSessionError(GatewayError):
    """An edit script names a document id with no live session.

    Either the session was never opened, or the store's LRU bound
    evicted it — the client re-opens by re-sending the full document.
    """

    status = 404
    code = "unknown-session"


class BadEditError(GatewayError):
    """An edit script was rejected: malformed wire payload, a dangling
    node path, or an edit that would break wire normal form.

    Rejection is atomic — the session's document and caches are exactly
    as they were before the script arrived.
    """

    status = 400
    code = "bad-edit"


class PayloadTooLargeError(GatewayError):
    """The request body exceeds the gateway's configured limit."""

    status = 413
    code = "too-large"


class PeerBusyError(GatewayError):
    """The sending peer is already at its concurrency limit (shed)."""

    status = 429
    code = "peer-limit"


class QueueFullError(GatewayError):
    """The gateway's bounded admission queue is full (shed)."""

    status = 503
    code = "queue-full"


class BreakerOpenError(GatewayError):
    """The peer's circuit breaker is open: failing fast, not enforcing."""

    status = 503
    code = "breaker-open"


class ShuttingDownError(GatewayError):
    """The gateway is draining and no longer admits new requests."""

    status = 503
    code = "shutting-down"


class DeadlineExceededError(GatewayError):
    """The request's deadline expired before enforcement finished.

    Deliberately *not* a :class:`repro.errors.ServiceError` subclass:
    the rewrite engine and the schema enforcer catch the service-fault
    family to degrade gracefully, while a gateway deadline must abort
    the whole request and surface as a 504 — so this error passes
    straight through both layers.
    """

    status = 504
    code = "deadline"


class EnforcementFailedError(GatewayError):
    """The schema enforcer's step (iii): the document cannot be made
    conformant to the receiver's schema."""

    status = 422
    code = "enforcement-failed"


class SnapshotError(GatewayError):
    """A compilation-cache snapshot blob was rejected."""

    status = 400
    code = "bad-snapshot"
