"""The async exchange gateway: schema enforcement as a peer service.

The paper's setting is peers exchanging intensional documents over the
wire; :class:`Gateway` is the long-lived process that makes the
library's Schema Enforcement module (:mod:`repro.axml.enforcement`)
callable by remote peers:

- ``POST /peers`` registers a peer: its vocabulary (XML Schema_int
  text) and the functions whose schema obligations it owns, persisted
  by :class:`~repro.gateway.registry.PeerRegistry`;
- ``POST /exchange`` accepts a document from a *sender*, enforces the
  *receiver's* schema on it (verify → rewrite → error), and replies
  with the materialized document plus a receipt;
- ``GET /snapshot`` / ``POST /snapshot`` ship the shared compilation
  cache between peers so a restarted or newly joined gateway
  warm-starts instead of recompiling every automaton;
- ``GET /metrics`` exports the ``repro_gateway_*`` metrics (counters,
  gauges, latency histograms with p50/p95/p99 quantile sketches) in
  Prometheus text format; ``GET /healthz`` and ``GET /stats`` serve
  liveness and a JSON summary.

Architecture notes:

- the HTTP front end is a single-threaded asyncio loop (stdlib only,
  :mod:`repro.gateway.http`); CPU-bound enforcement never runs on it —
  requests are dispatched onto a thread pool
  (:meth:`Gateway._run_enforcement`), inside which the engine may fan
  out further via the wave scheduler (``engine_workers``);
- every exchange passes the admission gate
  (:class:`~repro.gateway.admission.AdmissionController`): bounded
  queue, per-peer concurrency limits, and per-peer circuit breakers
  wired to enforcement failures — load is shed with typed 429/503
  errors, never queued unboundedly;
- per-request deadlines are enforced twice: propagated into the
  resilient invoker's document budget *and* hard-checked between
  materializations (:func:`~repro.gateway.invoke.deadline_guard`), so
  an expired request aborts mid-enforcement with a 504;
- graceful shutdown (:meth:`Gateway.stop`) stops admitting, waits for
  every in-flight request to finish writing its response, then closes
  lingering keep-alive connections — no admitted request ever loses
  its response.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Optional, Set, Tuple

from repro.axml.enforcement import EnforcementOutcome, SchemaEnforcer
from repro.compile.cache import CompilationCache
from repro.doc.document import Document
from repro.errors import (
    DocumentParseError,
    ReproError,
    UnknownPeerError,
)
from repro.gateway.admission import AdmissionController
from repro.gateway.errors import (
    BadEditError,
    BadRequestError,
    DeadlineExceededError,
    EnforcementFailedError,
    GatewayError,
    SnapshotError,
    UnknownRouteError,
    UnknownSessionError,
)
from repro.gateway.http import (
    DEFAULT_MAX_BODY_BYTES,
    Request,
    Response,
    StreamingResponse,
    read_request,
    write_response,
)
from repro.gateway.invoke import deadline_guard, delayed, sampling_invoker
from repro.gateway.registry import PeerRecord, PeerRegistry
from repro.gateway.sessions import SessionEntry, SessionStore
from repro.obs import context as obs
from repro.obs.metrics import MetricsRegistry, TIME_BUCKETS
from repro.obs.trace import Tracer
from repro.schema.patterns import allow_all, allow_only
from repro.schema.validate import validate
from repro.services.resilience import (
    ResiliencePolicy,
    ResilientInvoker,
    WallClock,
)

#: Enforcement modes a request may ask for.
MODES = ("safe", "possible", "auto")


@dataclass
class GatewayConfig:
    """Every knob of one gateway instance."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; Gateway.port holds the bound one
    #: JSON-on-disk peer registry path (None = in-memory only).
    registry_path: Optional[str] = None
    #: Gateway-wide cap on admitted (queued + running) requests.
    queue_limit: int = 256
    #: Default per-peer inflight cap (records may override).
    per_peer_limit: int = 8
    #: Enforcement thread-pool size (the asyncio ↔ CPU bridge).
    pool_size: int = 4
    #: Wave-scheduler worker count *inside* each enforcement.
    engine_workers: Optional[int] = None
    #: Reject request bodies beyond this many bytes (413).
    max_body_bytes: int = DEFAULT_MAX_BODY_BYTES
    #: Deadline applied when a request does not carry its own.
    default_deadline: Optional[float] = None
    #: Depth bound and mode defaults (requests may override).
    k: int = 1
    mode: str = "safe"
    #: Consecutive enforcement failures that open a peer's breaker.
    breaker_threshold: int = 5
    breaker_cooldown: float = 1.0
    #: Optional resilient-invoker policy for materializations; the
    #: request deadline is propagated into its document budget.
    resilience: Optional[ResiliencePolicy] = None
    #: Persistence directory for the compilation cache (None = memory).
    compile_cache_dir: Optional[str] = None
    #: Artificial per-call service latency (load experiments only).
    invoke_delay: float = 0.0
    #: Tracer ring-buffer capacity for gateway.* spans.
    trace_capacity: int = 4096
    #: LRU bound on live edit-script sessions (state at rest; the
    #: admission queue bounds work in flight).
    session_limit: int = 64
    #: TCP accept backlog.
    backlog: int = 512


class Gateway:
    """The asyncio HTTP front end over the schema-enforcement stack."""

    def __init__(
        self,
        config: Optional[GatewayConfig] = None,
        registry: Optional[PeerRegistry] = None,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        compile_cache: Optional[CompilationCache] = None,
    ):
        self.config = config or GatewayConfig()
        self.registry = registry or PeerRegistry(self.config.registry_path)
        self.metrics = metrics or MetricsRegistry()
        self.tracer = tracer or Tracer(capacity=self.config.trace_capacity)
        self.compile_cache = compile_cache or CompilationCache(
            persist_dir=self.config.compile_cache_dir
        )
        self.admission = AdmissionController(
            queue_limit=self.config.queue_limit,
            default_per_peer=self.config.per_peer_limit,
            breaker_threshold=self.config.breaker_threshold,
            breaker_cooldown=self.config.breaker_cooldown,
        )
        self.sessions = SessionStore(limit=self.config.session_limit)
        self.clock = WallClock()
        self.port: Optional[int] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._pool = None  # ThreadPoolExecutor, created on start
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._writers: Set[asyncio.StreamWriter] = set()
        self._inflight_responses = 0
        self._idle = None  # asyncio.Event, created on start
        self._draining = False
        self._started_at = 0.0
        self._previous_obs: Optional[Tuple] = None
        self._routes = {
            ("GET", "/healthz"): self._route_health,
            ("GET", "/metrics"): self._route_metrics,
            ("GET", "/stats"): self._route_stats,
            ("GET", "/peers"): self._route_peers_list,
            ("POST", "/peers"): self._route_peers_register,
            ("POST", "/exchange"): self._route_exchange,
            ("GET", "/snapshot"): self._route_snapshot_export,
            ("POST", "/snapshot"): self._route_snapshot_import,
        }

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> int:
        """Bind, install observability, spin up the pool; returns port."""
        from concurrent.futures import ThreadPoolExecutor

        self._loop = asyncio.get_running_loop()
        self._idle = asyncio.Event()
        self._idle.set()
        self._previous_obs = (obs.tracer(), obs.metrics())
        obs.install(self.tracer, self.metrics)
        self._pool = ThreadPoolExecutor(
            max_workers=max(1, self.config.pool_size),
            thread_name_prefix="gateway-enforce",
        )
        self._server = await asyncio.start_server(
            self._serve_connection,
            host=self.config.host,
            port=self.config.port,
            backlog=self.config.backlog,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._started_at = self.clock.now()
        self.metrics.gauge(
            "repro_gateway_up", "1 while the gateway is serving"
        ).set(1)
        return self.port

    async def stop(self, drain: bool = True, timeout: float = 30.0) -> None:
        """Graceful shutdown: drain in-flight requests, then close.

        With ``drain`` every admitted request finishes and its response
        is written before sockets close (the no-lost-responses
        guarantee); without it, in-flight work is abandoned.
        """
        self._draining = True
        self.admission.drain()
        if self._server is not None:
            self._server.close()
        if drain and self._idle is not None:
            try:
                await asyncio.wait_for(self._idle.wait(), timeout=timeout)
            except asyncio.TimeoutError:
                pass
        for writer in list(self._writers):
            try:
                writer.close()
            except Exception:
                pass
        if self._server is not None:
            await self._server.wait_closed()
        if self._pool is not None:
            self._pool.shutdown(wait=drain)
        self.metrics.gauge(
            "repro_gateway_up", "1 while the gateway is serving"
        ).set(0)
        if self._previous_obs is not None:
            obs.install(*self._previous_obs)
            self._previous_obs = None

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    # -- connection handling -------------------------------------------------

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._writers.add(writer)
        try:
            while True:
                try:
                    request = await read_request(
                        reader, max_body_bytes=self.config.max_body_bytes
                    )
                except GatewayError as error:
                    self._begin_response()
                    try:
                        await write_response(
                            writer, self._error_response(error, "parse"),
                            keep_alive=False,
                        )
                    finally:
                        self._end_response()
                    return
                if request is None:
                    return
                self._begin_response()
                try:
                    response = await self._dispatch(request)
                    await write_response(
                        writer, response,
                        keep_alive=request.keep_alive and not self._draining,
                    )
                finally:
                    self._end_response()
                if not request.keep_alive or self._draining:
                    return
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self._writers.discard(writer)
            try:
                writer.close()
            except Exception:
                pass

    def _begin_response(self) -> None:
        self._inflight_responses += 1
        self._idle.clear()

    def _end_response(self) -> None:
        self._inflight_responses -= 1
        if self._inflight_responses <= 0:
            self._idle.set()

    async def _dispatch(self, request: Request) -> Response:
        route = "%s %s" % (request.method, request.path)
        started = self.clock.now()
        with self.tracer.span(
            "gateway.request", method=request.method, path=request.path
        ) as span:
            try:
                handler = self._resolve(request)
                response = await handler(request)
            except GatewayError as error:
                response = self._error_response(error, request.path)
            except ReproError as error:
                response = Response.json(
                    {"error": "library-error", "detail": str(error),
                     "status": 500},
                    status=500,
                )
                self.metrics.counter(
                    "repro_gateway_errors_total",
                    "Typed gateway errors by code",
                ).inc(code="library-error")
            span.set(status=response.status)
        elapsed = self.clock.now() - started
        self.metrics.counter(
            "repro_gateway_requests_total", "Gateway requests by route/status"
        ).inc(route=route, status=str(response.status))
        self.metrics.histogram(
            "repro_gateway_request_seconds",
            "Wall time from parsed request to written response",
            buckets=TIME_BUCKETS,
        ).observe(elapsed, route=route)
        return response

    def _resolve(self, request: Request):
        handler = self._routes.get((request.method, request.path))
        if handler is not None:
            return handler
        if request.method == "DELETE" and request.path.startswith("/peers/"):
            return self._route_peers_remove
        raise UnknownRouteError(
            "no route for %s %s" % (request.method, request.path)
        )

    def _error_response(self, error: GatewayError, _where: str) -> Response:
        self.metrics.counter(
            "repro_gateway_errors_total", "Typed gateway errors by code"
        ).inc(code=error.code)
        return Response.json(error.payload(), status=error.status)

    # -- routes: operational -------------------------------------------------

    async def _route_health(self, _request: Request) -> Response:
        return Response.json({
            "status": "draining" if self._draining else "ok",
            "peers": len(self.registry),
            "inflight": self.admission.inflight,
            "uptime_seconds": round(self.clock.now() - self._started_at, 3),
        })

    async def _route_metrics(self, _request: Request) -> Response:
        from repro.obs.memory import record_peak_gauge

        record_peak_gauge()
        return Response.text(
            self.metrics.to_prometheus(),
            content_type="text/plain; version=0.0.4; charset=utf-8",
        )

    async def _route_stats(self, _request: Request) -> Response:
        from repro.obs.memory import memory_snapshot, record_peak_gauge

        record_peak_gauge()
        cache = self.compile_cache.stats()
        return Response.json({
            "memory": memory_snapshot(),
            "admitted_total": self.admission.admitted_total,
            "inflight": self.admission.inflight,
            "shed": dict(self.admission.shed_counts),
            "peers": self.registry.names(),
            "sessions": {
                "live": len(self.sessions),
                "opened": self.sessions.opened_total,
                "evicted": self.sessions.evicted_total,
            },
            "compile_cache": {
                "hits": cache.hits,
                "misses": cache.misses,
                "entries": cache.entries,
            },
        })

    # -- routes: peers -------------------------------------------------------

    async def _route_peers_list(self, _request: Request) -> Response:
        return Response.json({
            "peers": [record.to_json() for record in self.registry.records()]
        })

    async def _route_peers_register(self, request: Request) -> Response:
        payload = request.json()
        try:
            record = PeerRecord.from_json(payload)
        except ValueError as exc:
            raise BadRequestError(str(exc))
        self.registry.register(record)
        self.metrics.gauge(
            "repro_gateway_peers", "Registered peers"
        ).set(len(self.registry))
        self.tracer.event("gateway.peer-registered", peer=record.name)
        return Response.json(
            {"registered": record.name,
             "obligations": list(record.obligations)},
            status=201,
        )

    async def _route_peers_remove(self, request: Request) -> Response:
        name = request.path[len("/peers/"):]
        try:
            self.registry.remove(name)
        except UnknownPeerError as exc:
            from repro.gateway.errors import UnknownGatewayPeerError

            raise UnknownGatewayPeerError(str(exc))
        self.metrics.gauge(
            "repro_gateway_peers", "Registered peers"
        ).set(len(self.registry))
        return Response.json({"removed": name})

    # -- routes: snapshots (warm-start) --------------------------------------

    async def _route_snapshot_export(self, _request: Request) -> Response:
        blob = await self._loop.run_in_executor(
            self._pool, self.compile_cache.export_snapshot
        )
        self.metrics.counter(
            "repro_gateway_snapshot_bytes_total",
            "Compilation-cache snapshot bytes by direction",
        ).inc(len(blob), direction="export")
        return Response.binary(blob)

    async def _route_snapshot_import(self, request: Request) -> Response:
        def install() -> int:
            try:
                return self.compile_cache.import_snapshot(request.body)
            except ValueError as exc:
                raise SnapshotError(str(exc))

        added = await self._loop.run_in_executor(self._pool, install)
        self.metrics.counter(
            "repro_gateway_snapshot_bytes_total",
            "Compilation-cache snapshot bytes by direction",
        ).inc(len(request.body), direction="import")
        self.metrics.counter(
            "repro_gateway_snapshot_entries_total",
            "Artifacts added from imported snapshots",
        ).inc(added)
        return Response.json({"imported": added})

    # -- routes: the exchange ------------------------------------------------

    async def _route_exchange(self, request: Request):
        content_type = (
            request.headers.get("content-type", "").split(";", 1)[0]
            .strip().lower()
        )
        if content_type == "application/xml":
            # Streaming exchange: raw XML body (Content-Length or
            # chunked), parameters in the query string, enforced output
            # streamed back chunk-by-chunk with the receipt in trailers.
            return await self._route_exchange_stream(request)
        payload = request.json()
        sender_name = payload.get("sender")
        receiver_name = payload.get("receiver")
        if not isinstance(sender_name, str) or not sender_name:
            raise BadRequestError("missing or malformed 'sender'")
        if not isinstance(receiver_name, str) or not receiver_name:
            raise BadRequestError("missing or malformed 'receiver'")
        mode = payload.get("mode", self.config.mode)
        if mode not in MODES:
            raise BadRequestError(
                "mode must be one of %s" % ", ".join(MODES)
            )
        k = payload.get("k", self.config.k)
        if not isinstance(k, int) or k < 1:
            raise BadRequestError("'k' must be a positive integer")
        seed = payload.get("seed", 0)
        if not isinstance(seed, int):
            raise BadRequestError("'seed' must be an integer")
        document_id = payload.get("document_id")
        if document_id is not None:
            # Edit-script mode: enforce incrementally against the live
            # session keyed by this id ('document' opens, 'edits' applies).
            if not isinstance(document_id, str) or not document_id:
                raise BadRequestError(
                    "'document_id' must be a non-empty string"
                )
            if payload.get("deadline") is not None:
                raise BadRequestError(
                    "'deadline' is not supported in edit-script mode"
                )
            return await self._route_exchange_incremental(
                payload, sender_name, receiver_name, document_id,
                mode, k, seed,
            )
        document_xml = payload.get("document")
        if not isinstance(document_xml, str) or not document_xml.strip():
            raise BadRequestError("missing or malformed 'document'")
        deadline = payload.get("deadline", self.config.default_deadline)
        if deadline is not None and (
            not isinstance(deadline, (int, float)) or deadline <= 0
        ):
            raise BadRequestError("'deadline' must be a positive number")

        try:
            sender = self.registry.get(sender_name)
            receiver = self.registry.get(receiver_name)
        except UnknownPeerError as exc:
            from repro.gateway.errors import UnknownGatewayPeerError

            raise UnknownGatewayPeerError(str(exc))

        started = self.clock.now()
        ticket = self.admission.admit(
            sender_name, per_peer_limit=sender.max_inflight
        )
        try:
            with self.tracer.span(
                "gateway.exchange", sender=sender_name,
                receiver=receiver_name, mode=mode,
            ) as span:
                outcome, elapsed = await self._run_enforcement(
                    sender, receiver, document_xml, mode, k, seed,
                    deadline, started,
                )
                span.set(
                    ok=outcome.ok, calls=outcome.calls_made,
                    already_conformant=outcome.already_conformant,
                )
        except DeadlineExceededError:
            ticket.release(success=False)
            self.metrics.counter(
                "repro_gateway_deadline_total",
                "Requests aborted by their deadline",
            ).inc(peer=sender_name)
            raise
        except BaseException:
            ticket.release(success=False)
            raise
        else:
            ticket.release(success=outcome.ok)

        self.metrics.histogram(
            "repro_gateway_exchange_seconds",
            "Enforcement wall time by mode",
            buckets=TIME_BUCKETS,
        ).observe(elapsed, mode=mode)
        if not outcome.ok:
            raise EnforcementFailedError(outcome.error or "enforcement failed")

        wire = outcome.document.to_xml()
        report = validate(
            Document.from_xml(wire), receiver.schema()
        )
        self.metrics.counter(
            "repro_gateway_exchanges_total",
            "Completed exchange enforcements",
        ).inc(accepted=str(report.ok).lower(), mode=mode)
        self.metrics.counter(
            "repro_gateway_bytes_total", "Document bytes through the gateway"
        ).inc(len(wire.encode("utf-8")), direction="out")
        return Response.json({
            "accepted": report.ok,
            "document": wire,
            "calls": outcome.calls_made,
            "already_conformant": outcome.already_conformant,
            "degraded_functions": list(outcome.degraded_functions),
            "cache_hits": outcome.cache_hits,
            "cache_misses": outcome.cache_misses,
            "validation": "" if report.ok else str(report),
            "elapsed_seconds": round(elapsed, 6),
        })

    async def _run_enforcement(
        self,
        sender: PeerRecord,
        receiver: PeerRecord,
        document_xml: str,
        mode: str,
        k: int,
        seed: int,
        deadline: Optional[float],
        started: float,
    ) -> Tuple[EnforcementOutcome, float]:
        """Dispatch one enforcement onto the thread pool and await it.

        The worker side parses the document, builds the enforcer (the
        engine inside may fan out via the wave scheduler), and runs the
        verify → rewrite → error pipeline; the event loop only ever
        awaits the future, so hundreds of concurrent requests stay
        responsive while at most ``pool_size`` enforcements run.
        """
        clock = self.clock

        def job() -> Tuple[EnforcementOutcome, float]:
            if deadline is not None and clock.now() - started > deadline:
                # Spent its whole budget waiting in the queue.
                raise DeadlineExceededError(
                    "deadline of %.3fs expired before enforcement started"
                    % deadline
                )
            try:
                document = Document.from_xml(document_xml)
            except DocumentParseError as exc:
                raise BadRequestError("unparseable document: %s" % exc)
            policy = (
                allow_only(sender.obligations)
                if sender.obligations else allow_all()
            )
            invoker = sampling_invoker(sender.schema(), seed)
            invoker = delayed(invoker, clock, self.config.invoke_delay)
            if self.config.resilience is not None:
                resilience = ResiliencePolicy(
                    **{**self.config.resilience.__dict__,
                       "document_deadline": deadline},
                )
                invoker = ResilientInvoker(invoker, resilience, clock=clock)
            invoker = deadline_guard(invoker, clock, started, deadline)
            enforcer = SchemaEnforcer(
                target_schema=receiver.schema(),
                sender_schema=sender.schema(),
                k=k,
                mode=mode,
                policy=policy,
                workers=self.config.engine_workers,
                compile_cache=self.compile_cache,
            )
            enforce_started = clock.now()
            outcome = enforcer.enforce_document(document, invoker)
            now = clock.now()
            if deadline is not None and now - started > deadline:
                # The guard checks before each call; a request whose
                # *last* call overran still expired — and its peer has
                # already given up, so finishing quietly would be a lie.
                raise DeadlineExceededError(
                    "deadline of %.3fs expired after %.3fs (during "
                    "enforcement)" % (deadline, now - started)
                )
            return outcome, now - enforce_started

        return await self._loop.run_in_executor(self._pool, job)

    # -- routes: the streaming exchange --------------------------------------

    async def _route_exchange_stream(self, request: Request):
        """``POST /exchange`` with an ``application/xml`` body.

        Single-pass enforcement: the body's bytes (already capped at
        intake — a chunked upload is refused the moment its running
        count crosses the limit) feed the streaming pipeline, and the
        enforced serialization is written back with chunked framing
        while the tail of the document is still being rewritten.  The
        receipt travels in ``X-Repro-*`` trailers, after the last body
        byte — including failures discovered mid-stream, when the 200
        status line is long gone; clients must check ``X-Repro-Ok`` and
        discard the partial body when it is ``false``.
        """
        from repro.rewriting.plan import InvocationLog

        query = request.query
        sender_name = query.get("sender", "")
        receiver_name = query.get("receiver", "")
        if not sender_name:
            raise BadRequestError("missing 'sender' query parameter")
        if not receiver_name:
            raise BadRequestError("missing 'receiver' query parameter")
        mode = query.get("mode", self.config.mode)
        if mode not in MODES:
            raise BadRequestError("mode must be one of %s" % ", ".join(MODES))
        if mode == "possible":
            raise BadRequestError(
                "the streaming exchange supports safe/auto modes only"
            )
        if "deadline" in query:
            raise BadRequestError(
                "'deadline' is not supported on the streaming exchange"
            )
        try:
            k = int(query.get("k", str(self.config.k)))
            seed = int(query.get("seed", "0"))
        except ValueError:
            raise BadRequestError("'k' and 'seed' must be integers")
        if k < 1:
            raise BadRequestError("'k' must be a positive integer")
        if not request.body.strip():
            raise BadRequestError("missing document body")
        try:
            sender = self.registry.get(sender_name)
            receiver = self.registry.get(receiver_name)
        except UnknownPeerError as exc:
            from repro.gateway.errors import UnknownGatewayPeerError

            raise UnknownGatewayPeerError(str(exc))

        self.metrics.counter(
            "repro_gateway_bytes_total", "Document bytes through the gateway"
        ).inc(len(request.body), direction="in")
        started = self.clock.now()
        ticket = self.admission.admit(
            sender_name, per_peer_limit=sender.max_inflight
        )

        loop = self._loop
        clock = self.clock
        queue: asyncio.Queue = asyncio.Queue(maxsize=64)
        state = {"outcome": None, "abandoned": False, "released": False}
        _DONE = object()

        def release_once(ok: bool) -> None:
            if not state["released"]:
                state["released"] = True
                ticket.release(success=ok)

        def push(item) -> None:
            """Thread side: block until the loop has queue space.

            Re-checks client abandonment every 5s; a consumer that makes
            no progress for 60s counts as gone too (a sub-8KB/s reader
            is indistinguishable from a dead one, and the pool thread
            must not be parked forever).
            """
            import concurrent.futures as futures

            stalled = 0.0
            while True:
                if state["abandoned"] or stalled >= 60.0:
                    raise ConnectionError("streaming client went away")
                handle = asyncio.run_coroutine_threadsafe(
                    queue.put(item), loop
                )
                try:
                    handle.result(timeout=5.0)
                    return
                except futures.TimeoutError:
                    stalled += 5.0
                    handle.cancel()
                    try:
                        # The put may have completed just before the
                        # cancel; retrying then would duplicate bytes.
                        handle.result(timeout=5.0)
                        return
                    except futures.CancelledError:
                        continue

        def job() -> None:
            buffer = []
            buffered = 0

            def flush() -> None:
                nonlocal buffered
                if buffer:
                    push("".join(buffer))
                    buffer.clear()
                    buffered = 0

            def write(text: str) -> None:
                nonlocal buffered
                buffer.append(text)
                buffered += len(text)
                if buffered >= 8192:
                    flush()

            policy = (
                allow_only(sender.obligations)
                if sender.obligations else allow_all()
            )
            invoker = sampling_invoker(sender.schema(), seed)
            invoker = delayed(invoker, clock, self.config.invoke_delay)
            enforcer = SchemaEnforcer(
                target_schema=receiver.schema(),
                sender_schema=sender.schema(),
                k=k,
                mode=mode,
                policy=policy,
                workers=self.config.engine_workers,
                compile_cache=self.compile_cache,
            )
            try:
                try:
                    outcome = enforcer.enforce_stream(
                        request.body, invoker, write
                    )
                    flush()
                except DocumentParseError as exc:
                    outcome = EnforcementOutcome(
                        None, None, False, 0, InvocationLog(),
                        error="unparseable document: %s" % exc,
                    )
                state["outcome"] = outcome
            finally:
                push(_DONE)

        enforcement = loop.run_in_executor(self._pool, job)
        # Retrieve the job's exception even when the client vanishes and
        # nobody awaits the future (silences the never-retrieved warning).
        enforcement.add_done_callback(lambda fut: fut.exception())

        async def chunks():
            bytes_out = 0
            try:
                while True:
                    item = await queue.get()
                    if item is _DONE:
                        break
                    data = item.encode("utf-8")
                    bytes_out += len(data)
                    yield data
                await asyncio.wait({enforcement})
                outcome = state["outcome"]
                ok = (
                    enforcement.exception() is None
                    and outcome is not None and outcome.ok
                )
                release_once(ok)
                elapsed = clock.now() - started
                self.metrics.histogram(
                    "repro_gateway_exchange_seconds",
                    "Enforcement wall time by mode",
                    buckets=TIME_BUCKETS,
                ).observe(elapsed, mode="stream")
                self.metrics.counter(
                    "repro_gateway_exchanges_total",
                    "Completed exchange enforcements",
                ).inc(accepted=str(ok).lower(), mode="stream")
                self.metrics.counter(
                    "repro_gateway_bytes_total",
                    "Document bytes through the gateway",
                ).inc(bytes_out, direction="out")
                self.tracer.event(
                    "gateway.exchange-streamed", sender=sender_name,
                    receiver=receiver_name, ok=ok, bytes=bytes_out,
                )
            except BaseException:
                state["abandoned"] = True
                release_once(False)
                raise

        def trailers():
            outcome = state["outcome"]
            if outcome is None:
                return {
                    "X-Repro-Ok": "false",
                    "X-Repro-Error": "enforcement did not complete",
                }
            fields = {
                "X-Repro-Ok": str(outcome.ok).lower(),
                "X-Repro-Calls": str(outcome.calls_made),
                "X-Repro-Conformant": str(
                    outcome.already_conformant
                ).lower(),
                "X-Repro-Cache-Hits": str(outcome.cache_hits),
                "X-Repro-Cache-Misses": str(outcome.cache_misses),
            }
            if outcome.degraded_functions:
                fields["X-Repro-Degraded"] = ",".join(
                    outcome.degraded_functions
                )
            if outcome.error:
                fields["X-Repro-Error"] = outcome.error.replace(
                    "\r", " "
                ).replace("\n", " ")
            return fields

        return StreamingResponse(
            chunks=chunks(),
            content_type="application/xml",
            headers={
                "Trailer": "X-Repro-Ok, X-Repro-Calls, X-Repro-Conformant, "
                           "X-Repro-Cache-Hits, X-Repro-Cache-Misses",
            },
            trailers=trailers,
        )

    # -- routes: the edit-script exchange ------------------------------------

    async def _route_exchange_incremental(
        self,
        payload: dict,
        sender_name: str,
        receiver_name: str,
        document_id: str,
        mode: str,
        k: int,
        seed: int,
    ) -> Response:
        """Incremental enforcement against a live per-document session.

        ``document`` opens (or replaces) the session — a full initial
        enforcement that warms the subtree memo, analysis cache, and
        materialization cache; ``edits`` applies a typed edit script to
        the open session and re-enforces only what the script touched.
        Responses carry the same receipt as the full path plus the
        session's reuse accounting.
        """
        document_xml = payload.get("document")
        edits_payload = payload.get("edits")
        if (document_xml is None) == (edits_payload is None):
            raise BadRequestError(
                "edit-script mode takes exactly one of 'document' (open "
                "the session) or 'edits' (apply a script)"
            )
        try:
            sender = self.registry.get(sender_name)
            receiver = self.registry.get(receiver_name)
        except UnknownPeerError as exc:
            from repro.gateway.errors import UnknownGatewayPeerError

            raise UnknownGatewayPeerError(str(exc))

        started = self.clock.now()
        ticket = self.admission.admit(
            sender_name, per_peer_limit=sender.max_inflight
        )
        try:
            with self.tracer.span(
                "gateway.exchange.incremental", sender=sender_name,
                receiver=receiver_name, document_id=document_id,
            ) as span:
                if document_xml is not None:
                    outcome, session, event = await self._open_session(
                        sender, receiver, document_xml, mode, k, seed,
                        document_id,
                    )
                else:
                    outcome, session, event = await self._apply_session_edits(
                        sender_name, receiver_name, edits_payload,
                        document_id,
                    )
                span.set(
                    ok=outcome.ok, event=event,
                    reused=outcome.nodes_reused,
                    reanalyzed=outcome.nodes_reanalyzed,
                )
        except BaseException:
            ticket.release(success=False)
            raise
        else:
            ticket.release(success=outcome.ok)
        elapsed = self.clock.now() - started

        self._count_incremental(event)
        self.metrics.histogram(
            "repro_gateway_exchange_seconds",
            "Enforcement wall time by mode",
            buckets=TIME_BUCKETS,
        ).observe(elapsed, mode="incremental")
        if not outcome.ok:
            raise EnforcementFailedError(outcome.error or "enforcement failed")

        wire = outcome.document.to_xml()
        report = validate(Document.from_xml(wire), receiver.schema())
        self.metrics.counter(
            "repro_gateway_exchanges_total",
            "Completed exchange enforcements",
        ).inc(accepted=str(report.ok).lower(), mode="incremental")
        self.metrics.counter(
            "repro_gateway_bytes_total", "Document bytes through the gateway"
        ).inc(len(wire.encode("utf-8")), direction="out")
        return Response.json({
            "accepted": report.ok,
            "document_id": document_id,
            "document": wire,
            "calls": outcome.calls_made,
            "already_conformant": outcome.already_conformant,
            "degraded_functions": list(outcome.degraded_functions),
            "edits_applied": outcome.edits_applied,
            "passes": session.passes,
            "reuse": {
                "nodes_reanalyzed": outcome.nodes_reanalyzed,
                "nodes_reused": outcome.nodes_reused,
                "subtree_nodes_reused": outcome.subtree_nodes_reused,
                "verify_checked": outcome.verify_checked,
                "verify_reused": outcome.verify_reused,
                "invocations_performed": outcome.invocations_performed,
                "invocations_reused": outcome.invocations_reused,
            },
            "validation": "" if report.ok else str(report),
            "elapsed_seconds": round(elapsed, 6),
        })

    async def _open_session(
        self,
        sender: PeerRecord,
        receiver: PeerRecord,
        document_xml: str,
        mode: str,
        k: int,
        seed: int,
        document_id: str,
    ):
        """Build the session and run its initial full enforcement."""
        from repro.errors import DocumentError

        clock = self.clock

        def job():
            try:
                document = Document.from_xml(document_xml)
            except DocumentParseError as exc:
                raise BadRequestError("unparseable document: %s" % exc)
            policy = (
                allow_only(sender.obligations)
                if sender.obligations else allow_all()
            )
            # Per-call seeded sampling keeps every session pass a pure
            # function of (seed, call) — the determinism the byte-identity
            # contract with the full path needs.
            invoker = sampling_invoker(sender.schema(), seed)
            invoker = delayed(invoker, clock, self.config.invoke_delay)
            enforcer = SchemaEnforcer(
                target_schema=receiver.schema(),
                sender_schema=sender.schema(),
                k=k,
                mode=mode,
                policy=policy,
                compile_cache=self.compile_cache,
            )
            try:
                session = enforcer.session(document, invoker)
            except DocumentError as exc:
                raise BadRequestError(
                    "document not in wire normal form: %s" % exc
                )
            return session, session.enforce()

        session, outcome = await self._loop.run_in_executor(self._pool, job)
        entry = SessionEntry(
            document_id=document_id,
            sender=sender.name,
            receiver=receiver.name,
            session=session,
            mode=mode,
            k=k,
            seed=seed,
        )
        evicted = self.sessions.put(entry)
        if evicted is not None:
            self._count_incremental("evicted")
            self.tracer.event(
                "gateway.session-evicted",
                document_id=evicted.document_id, peer=evicted.sender,
            )
        return outcome, session, "opened"

    async def _apply_session_edits(
        self,
        sender_name: str,
        receiver_name: str,
        edits_payload,
        document_id: str,
    ):
        """Parse the wire script and apply it to the live session."""
        from repro.incremental.edits import (
            EditError,
            EditScriptError,
            script_from_json,
        )

        entry = self.sessions.get(document_id)
        if entry is None:
            raise UnknownSessionError(
                "no live session for document id %r (open one by sending "
                "the full document)" % document_id
            )
        if entry.sender != sender_name or entry.receiver != receiver_name:
            raise BadRequestError(
                "session %r belongs to the exchange %s -> %s"
                % (document_id, entry.sender, entry.receiver)
            )
        try:
            script = script_from_json(edits_payload)
        except EditScriptError as exc:
            raise BadEditError(str(exc))

        def job():
            # Sessions are stateful: scripts for one document serialize
            # on the entry lock; different documents run in parallel.
            with entry.lock:
                try:
                    return entry.session.apply(script)
                except EditError as exc:
                    raise BadEditError(str(exc))

        outcome = await self._loop.run_in_executor(self._pool, job)
        return outcome, entry.session, "applied"

    def _count_incremental(self, event: str) -> None:
        self.metrics.counter(
            "repro_gateway_incremental_total",
            "Edit-script session events by kind (opened/applied/evicted)",
        ).inc(event=event)
