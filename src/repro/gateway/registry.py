"""The gateway's persistent peer registry.

One record per peer: its name, its vocabulary (an XML Schema_int
document, kept as text exactly as it arrived so round-trips are
byte-faithful), the set of functions whose *schema obligations* it owns,
and its admission limits.  Ownership follows "Distributed XML Design":
typing an exchanged document is a multi-peer property, so every
function's obligations must have exactly one responsible peer — the
registry enforces uniqueness at registration time
(:class:`~repro.gateway.errors.ObligationConflictError`).

Persistence is JSON-on-disk with atomic writes (temp file +
``os.replace``, the :mod:`repro.compile.persist` discipline): a crashed
gateway never leaves a half-written registry, and a restarted one picks
up exactly the peers it had.  Corrupt or wrong-version files are
reported, not trusted.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import UnknownPeerError, XMLSchemaIntError
from repro.gateway.errors import BadRequestError, ObligationConflictError
from repro.schema.model import Schema

#: Bumped whenever the on-disk registry layout changes.
FORMAT_VERSION = 1

_MAGIC = "repro-gateway-registry"


@dataclass
class PeerRecord:
    """Everything the gateway knows about one registered peer."""

    name: str
    #: The peer's vocabulary as XML Schema_int text (labels + function
    #: signatures) — the schema other peers enforce against when this
    #: peer is the receiver, and the signature source when it sends.
    xschema: str
    #: Function names whose schema obligations this peer owns.  A legal
    #: exchange sent *by* this peer may only materialize owned functions;
    #: everything else stays intensional for its owner to expand.
    #: Empty means unrestricted (the single-peer reading of the paper).
    obligations: Tuple[str, ...] = ()
    #: Per-peer cap on concurrently admitted exchange requests.
    max_inflight: int = 8
    _schema: Optional[Schema] = field(default=None, repr=False, compare=False)

    def schema(self) -> Schema:
        """The compiled vocabulary (memoized; raises on malformed text)."""
        if self._schema is None:
            from repro.xschema.compile import compile_xschema
            from repro.xschema.parser import parse_xschema

            self._schema = compile_xschema(parse_xschema(self.xschema))
        return self._schema

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "xschema": self.xschema,
            "obligations": list(self.obligations),
            "max_inflight": self.max_inflight,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "PeerRecord":
        try:
            name = payload["name"]
            xschema = payload["xschema"]
        except (TypeError, KeyError) as exc:
            raise ValueError("peer record missing field: %s" % exc)
        if not isinstance(name, str) or not name:
            raise ValueError("peer name must be a non-empty string")
        if not isinstance(xschema, str) or not xschema.strip():
            raise ValueError("peer %r has no schema text" % name)
        obligations = payload.get("obligations", [])
        if not isinstance(obligations, (list, tuple)) or not all(
            isinstance(item, str) for item in obligations
        ):
            raise ValueError("peer %r obligations must be strings" % name)
        max_inflight = payload.get("max_inflight", 8)
        if not isinstance(max_inflight, int) or max_inflight < 1:
            raise ValueError("peer %r max_inflight must be a positive int" % name)
        return cls(
            name=name, xschema=xschema,
            obligations=tuple(sorted(set(obligations))),
            max_inflight=max_inflight,
        )


class PeerRegistry:
    """Thread-safe peer directory with optional JSON-on-disk persistence.

    Args:
        path: when set, every mutation is durably (and atomically)
            written there, and construction loads whatever the file
            already holds.
    """

    def __init__(self, path: Optional[str] = None):
        self.path = path
        self._lock = threading.Lock()
        self._peers: Dict[str, PeerRecord] = {}
        self._owners: Dict[str, str] = {}  # function -> owning peer
        self.load_errors: List[str] = []
        if path and os.path.exists(path):
            self._load(path)

    # -- queries ------------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._peers)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._peers

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._peers)

    def get(self, name: str) -> PeerRecord:
        """Fetch a record; typed :class:`UnknownPeerError` when absent."""
        with self._lock:
            record = self._peers.get(name)
            if record is None:
                raise UnknownPeerError(name, known=tuple(self._peers))
            return record

    def owner_of(self, function: str) -> Optional[str]:
        """The peer owning a function's schema obligations, if any."""
        with self._lock:
            return self._owners.get(function)

    def records(self) -> List[PeerRecord]:
        with self._lock:
            return [self._peers[name] for name in sorted(self._peers)]

    # -- mutations ----------------------------------------------------------

    def register(self, record: PeerRecord) -> PeerRecord:
        """Insert or replace a peer; persists when a path is configured.

        Raises :class:`ObligationConflictError` when the record claims a
        function another live peer already owns, and
        :class:`BadRequestError` when the schema text does not compile —
        a peer that cannot be enforced against must not enter the
        directory.
        """
        try:
            record.schema()
        except XMLSchemaIntError as exc:
            raise BadRequestError(
                "peer %r schema rejected: %s" % (record.name, exc)
            )
        with self._lock:
            for function in record.obligations:
                owner = self._owners.get(function)
                if owner is not None and owner != record.name:
                    raise ObligationConflictError(
                        "function %r obligations are owned by peer %r"
                        % (function, owner)
                    )
            previous = self._peers.get(record.name)
            if previous is not None:
                for function in previous.obligations:
                    self._owners.pop(function, None)
            self._peers[record.name] = record
            for function in record.obligations:
                self._owners[function] = record.name
            snapshot = self._to_json_locked()
        self._save(snapshot)
        return record

    def remove(self, name: str) -> PeerRecord:
        """Drop a peer (typed error when absent); persists the removal."""
        with self._lock:
            record = self._peers.pop(name, None)
            if record is None:
                raise UnknownPeerError(name, known=tuple(self._peers))
            for function in record.obligations:
                if self._owners.get(function) == name:
                    del self._owners[function]
            snapshot = self._to_json_locked()
        self._save(snapshot)
        return record

    # -- persistence --------------------------------------------------------

    def _to_json_locked(self) -> dict:
        return {
            "magic": _MAGIC,
            "version": FORMAT_VERSION,
            "peers": [
                self._peers[name].to_json() for name in sorted(self._peers)
            ],
        }

    def _save(self, snapshot: dict) -> None:
        if not self.path:
            return
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            prefix=os.path.basename(self.path) + ".", suffix=".tmp",
            dir=directory,
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(snapshot, handle, indent=2, sort_keys=True)
                handle.write("\n")
            os.replace(tmp, self.path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def _load(self, path: str) -> None:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            self.load_errors.append("registry file unreadable: %s" % exc)
            return
        if (
            not isinstance(payload, dict)
            or payload.get("magic") != _MAGIC
            or payload.get("version") != FORMAT_VERSION
        ):
            self.load_errors.append(
                "registry file has the wrong magic or version"
            )
            return
        for entry in payload.get("peers", []):
            try:
                record = PeerRecord.from_json(entry)
            except ValueError as exc:
                self.load_errors.append(str(exc))
                continue
            self._peers[record.name] = record
            for function in record.obligations:
                self._owners.setdefault(function, record.name)
