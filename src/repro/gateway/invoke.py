"""Invokers the gateway materializes embedded calls with.

The gateway, like the CLI, has no live SOAP providers behind it: calls
are served by **per-call seeded sampling** from the sender's declared
signatures — each call's output is drawn from an RNG derived from
``(seed, call fingerprint)``, so results depend on *content*, never on
scheduling order or worker count.  That is the property the load
benchmark leans on when it checks gateway responses byte-identical
against the direct library path.

A per-request deadline is enforced by :func:`deadline_guard`: the
wrapper re-checks the budget before every materialization, so a request
that blows its deadline mid-enforcement aborts with the typed 504 error
instead of burning the worker until completion.
"""

from __future__ import annotations

import random
from typing import Callable, Optional, Sequence, Tuple

from repro.doc.nodes import FunctionCall, Node
from repro.errors import ReproError
from repro.exec.fingerprint import call_fingerprint
from repro.gateway.errors import DeadlineExceededError
from repro.schema.generator import InstanceGenerator
from repro.schema.model import Schema

#: ``FunctionCall -> forest``, same contract as the whole stack.
Invoker = Callable[[FunctionCall], Sequence[Node]]


def sampling_invoker(schema: Schema, seed: int,
                     max_depth: int = 4) -> Invoker:
    """Serve calls by sampling output instances of declared signatures.

    Deterministic per logical call at any concurrency: the RNG is
    re-derived from ``(seed, call fingerprint)`` for every invocation
    (string seeding hashes deterministically, unlike ``hash()``).
    """

    def invoker(call: FunctionCall) -> Tuple[Node, ...]:
        if schema.output_type(call.name) is None:
            raise ReproError(
                "no signature for %r in the sender schema" % call.name
            )
        rng = random.Random("%s|%s" % (seed, call_fingerprint(call)))
        return tuple(
            InstanceGenerator(schema, rng, max_depth=max_depth)
            .output_forest(call.name)
        )

    return invoker


def deadline_guard(
    inner: Invoker,
    clock,
    started_at: float,
    deadline: Optional[float],
) -> Invoker:
    """Abort materialization once a request's deadline has expired.

    The check runs *before* each call, so the guard adds no latency to
    conformant requests and a deadline hit surfaces as
    :class:`DeadlineExceededError` — which is not a service fault, so it
    passes through the enforcer's degrade-and-continue machinery and
    reaches the gateway as a hard 504.
    """
    if deadline is None:
        return inner

    def invoker(call: FunctionCall) -> Sequence[Node]:
        elapsed = clock.now() - started_at
        if elapsed > deadline:
            raise DeadlineExceededError(
                "deadline of %.3fs expired after %.3fs (before call to %r)"
                % (deadline, elapsed, call.name)
            )
        return inner(call)

    return invoker


def delayed(inner: Invoker, clock, delay: float) -> Invoker:
    """Add fixed per-call service latency (load experiments only)."""
    if delay <= 0:
        return inner

    def invoker(call: FunctionCall) -> Sequence[Node]:
        clock.sleep(delay)
        return inner(call)

    return invoker
