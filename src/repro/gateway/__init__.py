"""The async exchange gateway — schema enforcement as a peer service.

This package turns the library + CLI reproduction into the paper's
actual setting: a long-lived process that accepts intensional documents
from remote peers over HTTP, enforces the receiver's schema obligations
(verify → rewrite → error, Section 7), and replies — with admission
control, per-peer circuit breakers, a persistent peer registry, and
compilation-cache warm-start snapshots.  Stdlib asyncio only; no new
runtime dependencies.

Entry points:

- :class:`Gateway` / :class:`GatewayConfig` — the asyncio HTTP server
  (``repro serve`` on the command line);
- :class:`GatewayThread` — run a gateway on a background thread (tests,
  benchmarks, embedding into synchronous programs);
- :class:`GatewayClient` — the matching stdlib client;
- :class:`PeerRegistry` / :class:`PeerRecord` — the JSON-on-disk peer
  directory with function-obligation ownership;
- :func:`run_load` — the closed-loop load benchmark behind
  ``BENCH_gateway_load.json`` (experiment E25).
"""

from repro.gateway.admission import Admission, AdmissionController
from repro.gateway.client import GatewayClient, GatewayReply
from repro.gateway.errors import (
    BadEditError,
    BadRequestError,
    BreakerOpenError,
    DeadlineExceededError,
    EnforcementFailedError,
    GatewayError,
    ObligationConflictError,
    PayloadTooLargeError,
    PeerBusyError,
    QueueFullError,
    ShuttingDownError,
    SnapshotError,
    UnknownGatewayPeerError,
    UnknownRouteError,
    UnknownSessionError,
)
from repro.gateway.registry import PeerRecord, PeerRegistry
from repro.gateway.sessions import SessionEntry, SessionStore
from repro.gateway.service import Gateway, GatewayConfig
from repro.gateway.thread import GatewayThread

__all__ = [
    "Admission",
    "AdmissionController",
    "BadEditError",
    "BadRequestError",
    "BreakerOpenError",
    "DeadlineExceededError",
    "EnforcementFailedError",
    "Gateway",
    "GatewayClient",
    "GatewayConfig",
    "GatewayError",
    "GatewayReply",
    "GatewayThread",
    "ObligationConflictError",
    "PayloadTooLargeError",
    "PeerBusyError",
    "PeerRecord",
    "PeerRegistry",
    "QueueFullError",
    "SessionEntry",
    "SessionStore",
    "ShuttingDownError",
    "SnapshotError",
    "UnknownGatewayPeerError",
    "UnknownRouteError",
    "UnknownSessionError",
]


def run_load(*args, **kwargs):
    """Lazy re-export of :func:`repro.gateway.loadgen.run_load`."""
    from repro.gateway.loadgen import run_load as _run_load

    return _run_load(*args, **kwargs)
