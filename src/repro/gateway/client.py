"""An asyncio client for the exchange gateway — stdlib only.

Speaks exactly the HTTP/1.1 slice :mod:`repro.gateway.http` serves,
with keep-alive connection reuse (one :class:`GatewayClient` = one
connection, re-opened on demand).  Used by the load generator, the CI
smoke job, and the tests; it is also the reference implementation for
what a remote peer must send.

:class:`GatewayReply` keeps the transport outcome (status, headers,
parsed JSON) without raising on error statuses — load generators need
to *count* 429/503 sheds, not crash on them.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass
class GatewayReply:
    """One HTTP reply, parsed but not judged."""

    status: int
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    def json(self) -> dict:
        return json.loads(self.body.decode("utf-8"))

    @property
    def error_code(self) -> Optional[str]:
        """The typed gateway error code, when the reply carries one."""
        if self.ok:
            return None
        try:
            return self.json().get("error")
        except (ValueError, UnicodeDecodeError):
            return None


class GatewayClient:
    """One keep-alive connection to a gateway."""

    def __init__(self, host: str, port: int):
        self.host = host
        self.port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def _connect(self) -> None:
        if self._writer is None or self._writer.is_closing():
            self._reader, self._writer = await asyncio.open_connection(
                self.host, self.port
            )

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._writer = None
            self._reader = None

    async def request(
        self,
        method: str,
        path: str,
        body: bytes = b"",
        content_type: str = "application/json",
    ) -> GatewayReply:
        """One request/response round-trip (reconnecting once if stale)."""
        for attempt in (1, 2):
            await self._connect()
            head = (
                "%s %s HTTP/1.1\r\n"
                "Host: %s:%d\r\n"
                "Content-Type: %s\r\n"
                "Content-Length: %d\r\n"
                "Connection: keep-alive\r\n\r\n"
                % (method, path, self.host, self.port, content_type, len(body))
            )
            try:
                self._writer.write(head.encode("latin-1") + body)
                await self._writer.drain()
                reply = await self._read_reply()
            except (ConnectionError, asyncio.IncompleteReadError, OSError):
                # A keep-alive connection the server closed between
                # requests; retry once on a fresh connection.
                await self.close()
                if attempt == 2:
                    raise
                continue
            if reply.headers.get("connection", "").lower() == "close":
                await self.close()
            return reply
        raise ConnectionError("unreachable")  # pragma: no cover

    async def _read_reply(self) -> GatewayReply:
        head = await self._reader.readuntil(b"\r\n\r\n")
        lines = head.decode("latin-1").split("\r\n")
        status = int(lines[0].split(" ", 2)[1])
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            if ":" in line:
                name, _, value = line.partition(":")
                headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        body = await self._reader.readexactly(length) if length else b""
        return GatewayReply(status=status, headers=headers, body=body)

    # -- typed helpers -------------------------------------------------------

    async def post_json(self, path: str, payload: dict) -> GatewayReply:
        return await self.request(
            "POST", path, json.dumps(payload).encode("utf-8")
        )

    async def health(self) -> dict:
        return (await self.request("GET", "/healthz")).json()

    async def metrics_text(self) -> str:
        reply = await self.request("GET", "/metrics")
        return reply.body.decode("utf-8")

    async def register_peer(
        self,
        name: str,
        xschema: str,
        obligations=(),
        max_inflight: int = 8,
    ) -> GatewayReply:
        return await self.post_json("/peers", {
            "name": name,
            "xschema": xschema,
            "obligations": list(obligations),
            "max_inflight": max_inflight,
        })

    async def exchange(
        self,
        sender: str,
        receiver: str,
        document_xml: str,
        mode: Optional[str] = None,
        k: Optional[int] = None,
        seed: int = 0,
        deadline: Optional[float] = None,
    ) -> GatewayReply:
        payload: dict = {
            "sender": sender,
            "receiver": receiver,
            "document": document_xml,
            "seed": seed,
        }
        if mode is not None:
            payload["mode"] = mode
        if k is not None:
            payload["k"] = k
        if deadline is not None:
            payload["deadline"] = deadline
        return await self.post_json("/exchange", payload)

    async def open_session(
        self,
        sender: str,
        receiver: str,
        document_id: str,
        document_xml: str,
        mode: Optional[str] = None,
        k: Optional[int] = None,
        seed: int = 0,
    ) -> GatewayReply:
        """Open an edit-script session: one full enforcement that warms
        the per-document caches for the scripts that follow."""
        payload: dict = {
            "sender": sender,
            "receiver": receiver,
            "document_id": document_id,
            "document": document_xml,
            "seed": seed,
        }
        if mode is not None:
            payload["mode"] = mode
        if k is not None:
            payload["k"] = k
        return await self.post_json("/exchange", payload)

    async def apply_edits(
        self,
        sender: str,
        receiver: str,
        document_id: str,
        edits: list,
    ) -> GatewayReply:
        """Apply one wire edit script (see
        :func:`repro.incremental.edits.script_to_json`) to a live session."""
        return await self.post_json("/exchange", {
            "sender": sender,
            "receiver": receiver,
            "document_id": document_id,
            "edits": edits,
        })

    async def export_snapshot(self) -> bytes:
        reply = await self.request("GET", "/snapshot")
        if not reply.ok:
            raise ConnectionError(
                "snapshot export failed with %d" % reply.status
            )
        return reply.body

    async def import_snapshot(self, blob: bytes) -> GatewayReply:
        return await self.request(
            "POST", "/snapshot", blob,
            content_type="application/octet-stream",
        )
