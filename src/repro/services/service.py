"""Simulated Web-service endpoints.

A :class:`Service` stands for one SOAP endpoint (one ``endpointURL``)
hosting named operations.  Each :class:`Operation` carries the signature
its WSDL_int would declare, a handler implementing it, a price, and a
side-effect flag; the service records every call so tests and benchmarks
can assert on side effects (e.g. that backtracked possible-rewriting
branches really did invoke the service).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.doc.nodes import Node, symbol_of
from repro.errors import ServiceFault, UnknownServiceError
from repro.schema.model import FunctionSignature, Schema
from repro.schema.validate import word_matches

#: Handlers take the parameter forest and return the output forest.
Handler = Callable[[Sequence[Node]], Sequence[Node]]


@dataclass
class CallRecord:
    """One performed invocation, as seen by the service."""

    operation: str
    param_symbols: Tuple[str, ...]
    output_symbols: Tuple[str, ...]
    faulted: bool = False


@dataclass
class Operation:
    """One operation of a service, with its declared signature."""

    name: str
    signature: FunctionSignature
    handler: Handler
    cost: float = 1.0
    side_effect_free: bool = False


@dataclass
class Service:
    """One simulated SOAP endpoint."""

    endpoint: str
    namespace: str = ""
    operations: Dict[str, Operation] = field(default_factory=dict)
    calls: List[CallRecord] = field(default_factory=list)
    validate_io: bool = False  # optionally enforce signatures at the boundary
    schema: Optional[Schema] = None  # vocabulary for boundary validation

    def add_operation(
        self,
        name: str,
        signature: FunctionSignature,
        handler: Handler,
        cost: float = 1.0,
        side_effect_free: bool = False,
    ) -> "Service":
        """Register an operation; returns self for chaining."""
        self.operations[name] = Operation(
            name, signature, handler, cost, side_effect_free
        )
        return self

    def operation(self, name: str) -> Operation:
        """Look an operation up; raises :class:`UnknownServiceError`."""
        op = self.operations.get(name)
        if op is None:
            raise UnknownServiceError(
                "endpoint %r has no operation %r" % (self.endpoint, name)
            )
        return op

    def invoke(self, name: str, params: Sequence[Node]) -> Tuple[Node, ...]:
        """Execute one operation, recording the call.

        With ``validate_io`` the parameter and output root words are
        checked against the declared signature and a
        :class:`ServiceFault` is raised on mismatch — this is how the
        fabric simulates a strict provider.
        """
        op = self.operation(name)
        param_word = tuple(symbol_of(node) for node in params)
        record = CallRecord(name, param_word, ())
        self.calls.append(record)

        if self.validate_io and not self._word_ok(param_word, op.signature.input_type):
            record.faulted = True
            raise ServiceFault(
                "operation %r rejected parameters %s"
                % (name, ".".join(param_word) or "eps"),
                fault_code="Client",
            )
        try:
            output = tuple(op.handler(tuple(params)))
        except ServiceFault:
            record.faulted = True
            raise
        except Exception as exc:
            # A crashing handler must stay inside the SOAP protocol: the
            # caller sees an encoded Server fault, not a raw Python error
            # escaping ServiceRegistry._serve.
            record.faulted = True
            raise ServiceFault(
                "operation %r failed internally: %s" % (name, exc),
                fault_code="Server",
            ) from exc
        output_word = tuple(symbol_of(node) for node in output)
        record.output_symbols = output_word
        if self.validate_io and not self._word_ok(output_word, op.signature.output_type):
            record.faulted = True
            raise ServiceFault(
                "operation %r produced %s outside its declared output type"
                % (name, ".".join(output_word) or "eps")
            )
        return output

    def _word_ok(self, word: Tuple[str, ...], expr) -> bool:
        schema = self.schema or Schema({}, {})
        return word_matches(word, expr, schema)

    # -- accounting -------------------------------------------------------

    def call_count(self, operation: Optional[str] = None) -> int:
        """How many calls the service served (optionally per operation)."""
        if operation is None:
            return len(self.calls)
        return sum(1 for record in self.calls if record.operation == operation)

    def reset_accounting(self) -> None:
        """Forget recorded calls (between benchmark rounds)."""
        self.calls.clear()
