"""A UDDI-like service registry and the transport glue.

The registry maps function names (and endpoint URLs) to simulated
services, provides the ``UDDIF`` membership predicate for function
patterns, and builds *invokers* — the callables the rewriting engine
uses to materialize function nodes.  Invocations made through
:meth:`ServiceRegistry.make_invoker` round-trip through SOAP envelopes,
so the whole enforcement pipeline exercises serialization exactly like
the paper's peer-to-peer deployment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.doc.nodes import FunctionCall, Node
from repro.errors import AccessDeniedError, UnknownServiceError
from repro.obs import context as obs
from repro.schema.model import FunctionSignature
from repro.services.acl import AccessControlList
from repro.services.service import Operation, Service
from repro.services.soap import (
    decode_request,
    decode_response,
    encode_request,
    encode_response,
    encode_fault,
    raise_if_fault,
)
from repro.errors import ServiceFault


@dataclass
class ServiceRegistry:
    """Routes function nodes to simulated services."""

    services: Dict[str, Service] = field(default_factory=dict)  # by endpoint
    by_operation: Dict[str, Service] = field(default_factory=dict)
    acl: Optional[AccessControlList] = None
    use_soap: bool = True  # round-trip through envelopes (the default)

    def register(self, service: Service) -> "ServiceRegistry":
        """Add a service; its operations become resolvable by name."""
        self.services[service.endpoint] = service
        for name in service.operations:
            self.by_operation[name] = service
        return self

    # -- resolution ---------------------------------------------------------

    def resolve(self, call: FunctionCall) -> Tuple[Service, Operation]:
        """The service and operation a function node refers to.

        Resolution prefers the node's ``endpointURL`` when present (the
        paper's function nodes carry the full SOAP triple), falling back
        to operation-name lookup.
        """
        service: Optional[Service] = None
        if call.endpoint:
            service = self.services.get(call.endpoint)
        if service is None:
            service = self.by_operation.get(call.name)
        if service is None:
            raise UnknownServiceError(
                "no registered service provides %r" % call.name
            )
        return service, service.operation(call.name)

    def signature_of(self, name: str) -> Optional[FunctionSignature]:
        """The WSDL-declared signature of an operation, if registered."""
        service = self.by_operation.get(name)
        if service is None:
            return None
        return service.operations[name].signature

    def knows(self, name: str) -> bool:
        """UDDIF: is the function registered here?"""
        return name in self.by_operation

    def uddif_predicate(self) -> Callable[[str], bool]:
        """The live registry-membership predicate for function patterns."""
        return self.knows

    # -- invocation -----------------------------------------------------------

    def invoke(
        self, call: FunctionCall, principal: Optional[str] = None
    ) -> Tuple[Node, ...]:
        """Invoke the service a function node refers to.

        Enforces the ACL when one is attached, then (by default) ships
        the parameters through a SOAP request envelope, executes the
        operation, and decodes the response envelope.
        """
        service, operation = self.resolve(call)
        if self.acl is not None and not self.acl.allows(principal, call.name):
            raise AccessDeniedError(
                "principal %r may not invoke %r" % (principal, call.name)
            )
        if not self.use_soap:
            return tuple(service.invoke(operation.name, call.params))

        request = encode_request(
            operation.name, call.namespace or service.namespace, call.params
        )
        response = self._serve(service, request)
        tracer = obs.tracer()
        if tracer.enabled:
            span = tracer.current()
            if span is not None:
                span.set(
                    endpoint=service.endpoint,
                    request_bytes=len(request.encode("utf-8")),
                    response_bytes=len(response.encode("utf-8")),
                )
        envelope = raise_if_fault(decode_response(response))
        return envelope.forest

    def _serve(self, service: Service, request_xml: str) -> str:
        """The "server side": decode, execute, encode (faults included)."""
        envelope = decode_request(request_xml)
        try:
            output = service.invoke(envelope.operation, envelope.forest)
        except ServiceFault as fault:
            return encode_fault(fault.fault_code, str(fault))
        return encode_response(envelope.operation, envelope.namespace, output)

    def make_invoker(
        self,
        principal: Optional[str] = None,
        resilience: Optional["ResiliencePolicy"] = None,
        clock=None,
    ) -> Callable[[FunctionCall], Tuple[Node, ...]]:
        """An invoker for :class:`repro.rewriting.RewriteEngine`.

        With a :class:`repro.services.resilience.ResiliencePolicy` the
        invoker is wrapped in a :class:`ResilientInvoker` — retries,
        deadlines and per-endpoint circuit breakers keyed by the
        registry's own resolution — and exposes its ``report``.
        """

        def invoker(call: FunctionCall) -> Tuple[Node, ...]:
            return self.invoke(call, principal)

        if resilience is None:
            # The resilient wrapper emits its own ``invoke`` span; give
            # the plain path one too so traces look the same either way.
            def traced(call: FunctionCall) -> Tuple[Node, ...]:
                tracer = obs.tracer()
                if not tracer.enabled:
                    return invoker(call)
                with tracer.span(
                    "invoke", function=call.name,
                    endpoint=call.endpoint or call.name,
                ) as span:
                    forest = invoker(call)
                    span.set(outcome="ok", outputs=len(forest))
                    return forest

            return traced

        from repro.services.resilience import ResilientInvoker

        def endpoint_of(call: FunctionCall) -> str:
            try:
                service, _operation = self.resolve(call)
            except UnknownServiceError:
                return call.endpoint or call.name
            return service.endpoint

        return ResilientInvoker(
            invoker, policy=resilience, endpoint_of=endpoint_of, clock=clock
        )

    # -- UDDI-style search (the conclusion's third extension) -----------------

    def find_providers(
        self,
        output_type,
        input_type=None,
        require_subset: bool = False,
    ) -> List[Tuple[Service, Operation]]:
        """Find operations by the *type* of information they provide.

        "The module may be extended to include search capabilities, e.g.,
        UDDI style search, to try to find services on the Web that
        provide some particular information."

        An operation matches when its declared output type shares a word
        with the requested type (or, with ``require_subset``, is wholly
        contained in it — the caller is then guaranteed every answer
        fits).  ``input_type`` additionally constrains what the caller
        must be able to supply.
        """
        from repro.automata.ops import intersects, language_subset, regex_to_dfa
        from repro.automata.symbols import Alphabet, regex_symbols

        matches: List[Tuple[Service, Operation]] = []
        for endpoint in sorted(self.services):
            service = self.services[endpoint]
            for name in sorted(service.operations):
                operation = service.operations[name]
                signature = operation.signature
                alphabet = Alphabet.closure(
                    regex_symbols(signature.output_type),
                    regex_symbols(output_type),
                )
                theirs = regex_to_dfa(signature.output_type, alphabet)
                wanted = regex_to_dfa(output_type, alphabet)
                type_ok = (
                    language_subset(theirs, wanted)
                    if require_subset
                    else intersects(theirs, wanted)
                )
                if not type_ok:
                    continue
                if input_type is not None:
                    in_alphabet = Alphabet.closure(
                        regex_symbols(signature.input_type),
                        regex_symbols(input_type),
                    )
                    if not language_subset(
                        regex_to_dfa(input_type, in_alphabet),
                        regex_to_dfa(signature.input_type, in_alphabet),
                    ):
                        continue
                matches.append((service, operation))
        return matches

    # -- accounting -----------------------------------------------------------

    def total_calls(self) -> int:
        """Calls served across all registered services."""
        return sum(service.call_count() for service in self.services.values())

    def reset_accounting(self) -> None:
        """Reset call records on every service."""
        for service in self.services.values():
            service.reset_accounting()
