"""WSDL_int: service descriptions with intensional types (Section 7).

"One of the major features of the WSDL language is to describe the input
and output types of Web services functions using XML Schema.  We extend
WSDL in the obvious way, by simply allowing these types to describe
intensional data, using XML Schema_int."

A WSDL_int document here is a ``<definitions>`` element embedding one
XML Schema_int in its ``<types>`` section; every operation of the
service appears there as a ``<function>`` declaration, and the service's
endpoint is carried by a ``<service>``/``<port>`` address, mirroring real
WSDL 1.1 structure at miniature scale.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass, field
from typing import Dict, Optional
from xml.sax.saxutils import quoteattr

from repro.errors import XMLSchemaIntError
from repro.schema.model import FunctionSignature, Schema
from repro.services.service import Service
from repro.xschema.compile import compile_xschema
from repro.xschema.parser import parse_xschema
from repro.xschema.writer import schema_to_xschema

WSDL_NS = "http://schemas.xmlsoap.org/wsdl/"


@dataclass
class WsdlDescription:
    """The information a WSDL_int document conveys."""

    name: str
    endpoint: str
    namespace: str
    signatures: Dict[str, FunctionSignature] = field(default_factory=dict)
    vocabulary: Optional[Schema] = None  # element declarations in <types>


def service_to_wsdl(service: Service, vocabulary: Optional[Schema] = None) -> str:
    """Describe a simulated service as a WSDL_int document.

    ``vocabulary`` supplies the element declarations the signatures refer
    to (e.g. ``city``, ``temp``); when omitted only the function
    declarations are embedded.
    """
    label_types = dict(vocabulary.label_types) if vocabulary else {}
    functions = {
        name: operation.signature for name, operation in service.operations.items()
    }
    embedded = Schema(label_types, functions, {})
    schema_xml = schema_to_xschema(embedded)
    indented = "\n".join("      " + line for line in schema_xml.splitlines())

    lines = [
        '<definitions xmlns="%s" name=%s targetNamespace=%s>'
        % (WSDL_NS, quoteattr(service.endpoint), quoteattr(service.namespace or "")),
        "  <types>",
        indented,
        "  </types>",
        '  <portType name="operations">',
    ]
    for name in sorted(service.operations):
        lines.append("    <operation name=%s>" % quoteattr(name))
        lines.append("      <input function=%s/>" % quoteattr(name))
        lines.append("      <output function=%s/>" % quoteattr(name))
        lines.append("    </operation>")
    lines.extend(
        [
            "  </portType>",
            '  <service name="endpoint">',
            "    <port><address location=%s/></port>" % quoteattr(service.endpoint),
            "  </service>",
            "</definitions>",
        ]
    )
    return "\n".join(lines)


def parse_wsdl(text: str) -> WsdlDescription:
    """Parse a WSDL_int document back into signatures and coordinates."""
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise XMLSchemaIntError("malformed WSDL_int: %s" % exc) from exc
    if root.tag != "{%s}definitions" % WSDL_NS:
        raise XMLSchemaIntError("not a WSDL document: %r" % root.tag)

    name = root.get("name", "")
    namespace = root.get("targetNamespace", "")

    types = root.find("{%s}types" % WSDL_NS)
    schema_elem = None if types is None else next(iter(types), None)
    signatures: Dict[str, FunctionSignature] = {}
    vocabulary: Optional[Schema] = None
    if schema_elem is not None:
        compiled = compile_xschema(
            parse_xschema(ET.tostring(schema_elem, encoding="unicode"))
        )
        signatures = dict(compiled.functions)
        vocabulary = compiled

    endpoint = ""
    service = root.find("{%s}service" % WSDL_NS)
    if service is not None:
        address = service.find(
            "{%s}port/{%s}address" % (WSDL_NS, WSDL_NS)
        )
        if address is not None:
            endpoint = address.get("location", "")

    return WsdlDescription(name, endpoint or name, namespace, signatures, vocabulary)
