"""Handler factories for simulated services.

The rewriting algorithms' guarantees are quantified over the outputs a
service *may* return, so the simulator must be able to produce:

- arbitrary type-conforming outputs (:func:`sampling_responder`, seeded),
- the *adversarial* corner cases that separate safe from possible
  rewritings — e.g. a ``TimeOut`` that returns ``performance`` elements
  (:func:`adversarial_responder` picks outputs maximizing rejection),
- fixed test fixtures (:func:`constant_responder`,
  :func:`scripted_responder`),
- infrastructure failures: :func:`flaky_responder` raises SOAP faults on
  a fixed cadence, :func:`outage_responder` scripts whole failure
  windows, and :func:`latency_responder` injects (simulated-clock)
  delays so the resilient layer's timeouts are testable end to end.
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional, Sequence, Tuple

from repro.doc.nodes import Node
from repro.errors import ServiceFault, TransientFault
from repro.regex.ast import Regex
from repro.schema.generator import InstanceGenerator
from repro.schema.model import Schema
from repro.services.service import Handler


def constant_responder(forest: Sequence[Node]) -> Handler:
    """Always return the same forest (ignoring parameters)."""
    fixed = tuple(forest)

    def handler(_params: Sequence[Node]) -> Tuple[Node, ...]:
        return fixed

    return handler


def scripted_responder(
    script: Sequence[Sequence[Node]], repeat_last: bool = True
) -> Handler:
    """Return pre-scripted forests, one per call.

    Models real services whose answers change over time (the paper's
    temperature and stock-exchange examples: "two consecutive calls may
    return a different result").  After the script is exhausted, the
    last entry repeats (or a fault is raised with ``repeat_last=False``).
    """
    remaining: List[Tuple[Node, ...]] = [tuple(forest) for forest in script]
    if not remaining:
        raise ValueError("script must contain at least one response")
    state = {"index": 0}

    def handler(_params: Sequence[Node]) -> Tuple[Node, ...]:
        index = state["index"]
        if index >= len(remaining):
            if repeat_last:
                return remaining[-1]
            raise ServiceFault("scripted responder exhausted its script")
        state["index"] += 1
        return remaining[index]

    return handler


def sampling_responder(
    schema: Schema,
    function_name: str,
    seed: int = 0,
    max_depth: int = 4,
) -> Handler:
    """Sample a fresh output instance of the declared type on every call.

    This is the workhorse of the simulation: outputs vary per call (as
    Definition 4 allows — "we may replace two occurrences of the same
    function by two different output instances") while always conforming
    to ``tau_out``.
    """
    rng = random.Random(seed)
    generator = InstanceGenerator(schema, rng, max_depth=max_depth)

    def handler(_params: Sequence[Node]) -> Tuple[Node, ...]:
        return generator.output_forest(function_name)

    return handler


def adversarial_responder(
    schema: Schema,
    function_name: str,
    avoid: Sequence[str],
    seed: int = 0,
    max_depth: int = 4,
    attempts: int = 16,
) -> Handler:
    """Prefer outputs whose root symbols include one of ``avoid``.

    Used to demonstrate that possible rewritings really can fail: an
    adversarial ``TimeOut`` keeps answering with ``performance`` elements
    whenever its output type admits them.
    """
    rng = random.Random(seed)
    generator = InstanceGenerator(schema, rng, max_depth=max_depth)
    avoided = set(avoid)

    def handler(_params: Sequence[Node]) -> Tuple[Node, ...]:
        from repro.doc.nodes import symbol_of

        best: Optional[Tuple[Node, ...]] = None
        for _ in range(attempts):
            candidate = generator.output_forest(function_name)
            symbols = {symbol_of(node) for node in candidate}
            if symbols & avoided:
                return candidate
            if best is None:
                best = candidate
        return best if best is not None else ()

    return handler


def flaky_responder(inner: Handler, fail_every: int = 2) -> Handler:
    """Wrap a handler so every n-th call raises a SOAP fault.

    Exercises the enforcement module's fault propagation; ``fail_every=1``
    makes the service always fail.
    """
    if fail_every < 1:
        raise ValueError("fail_every must be >= 1")
    state = {"count": 0}

    def handler(params: Sequence[Node]) -> Sequence[Node]:
        state["count"] += 1
        if state["count"] % fail_every == 0:
            raise ServiceFault("simulated outage (call #%d)" % state["count"])
        return inner(params)

    return handler


def outage_responder(
    inner: Handler,
    outages: Sequence[Tuple[int, int]],
    fault_code: str = "Server.Transient",
) -> Handler:
    """Fail every call whose 1-based index falls in a scripted window.

    ``outages`` is a sequence of inclusive ``(first, last)`` call-number
    windows, e.g. ``[(3, 5), (9, 9)]`` — deterministic planned downtime,
    the scenario a circuit breaker exists for.  Faults are transient by
    default (the provider comes back); pass ``fault_code="Client"`` to
    script a permanent rejection instead.
    """
    windows = [(int(first), int(last)) for first, last in outages]
    for first, last in windows:
        if first < 1 or last < first:
            raise ValueError("outage windows must satisfy 1 <= first <= last")
    state = {"count": 0}

    def handler(params: Sequence[Node]) -> Sequence[Node]:
        state["count"] += 1
        number = state["count"]
        for first, last in windows:
            if first <= number <= last:
                raise TransientFault(
                    "scripted outage (call #%d in window %d-%d)"
                    % (number, first, last),
                    fault_code=fault_code,
                )
        return inner(params)

    return handler


def latency_responder(
    inner: Handler,
    delay,
    clock,
) -> Handler:
    """Advance ``clock`` by ``delay`` seconds before answering.

    ``delay`` is a float or a callable from the 1-based call index to a
    float (so latency spikes can be scripted).  Pass the same clock the
    :class:`repro.services.resilience.ResilientInvoker` uses and its
    per-call ``call_timeout`` will observe the injected latency — with a
    :class:`SimulatedClock`, instantly and deterministically.
    """
    state = {"count": 0}

    def handler(params: Sequence[Node]) -> Sequence[Node]:
        state["count"] += 1
        seconds = delay(state["count"]) if callable(delay) else delay
        clock.sleep(float(seconds))
        return inner(params)

    return handler
