"""SOAP-style envelopes for the simulated transport.

Real Active XML peers exchange SOAP messages.  The simulated fabric
round-trips every invocation through the same kind of XML envelope, so
serialization bugs cannot hide behind in-process shortcuts: parameters
are serialized into a request envelope, parsed back on the "server"
side, and the output forest travels back the same way.

The envelope format is a faithful miniature of SOAP 1.1::

    <soap:Envelope xmlns:soap="http://schemas.xmlsoap.org/soap/envelope/">
      <soap:Body>
        <m:Get_Temp xmlns:m="urn:xmethods-weather">
          <m:param><city>Paris</city></m:param>
        </m:Get_Temp>
      </soap:Body>
    </soap:Envelope>
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.doc.nodes import Node
from repro.doc.xml_io import INT_NS, node_from_xml, node_to_xml
from repro.errors import (
    DocumentParseError,
    PermanentFault,
    ServiceFault,
    TransientFault,
)
from repro.obs import context as obs


def _count_bytes(direction: str, kind: str, xml_text: str) -> None:
    """Record envelope sizes in ``repro_soap_bytes_total`` when metering."""
    metrics = obs.metrics()
    if metrics.enabled:
        metrics.counter(
            "repro_soap_bytes_total", "SOAP envelope bytes on the wire"
        ).inc(len(xml_text.encode("utf-8")), direction=direction, kind=kind)

SOAP_NS = "http://schemas.xmlsoap.org/soap/envelope/"
_ENVELOPE = "{%s}Envelope" % SOAP_NS
_BODY = "{%s}Body" % SOAP_NS
_FAULT = "{%s}Fault" % SOAP_NS


@dataclass(frozen=True)
class SoapEnvelope:
    """A decoded request or response."""

    operation: str
    namespace: str
    forest: Tuple[Node, ...]  # parameters (request) or results (response)
    is_fault: bool = False
    fault_code: str = ""
    fault_string: str = ""


#: Namespace used when a service declares none (xmlns:m="" is illegal XML).
ANONYMOUS_NS = "urn:repro:anonymous"


def _wrap(operation: str, namespace: str, forest: Sequence[Node], tag: str) -> str:
    namespace = namespace or ANONYMOUS_NS
    parts: List[str] = [
        '<soap:Envelope xmlns:soap="%s">' % SOAP_NS,
        "  <soap:Body>",
        '    <m:%s xmlns:m="%s" xmlns:int="%s">' % (operation, namespace, INT_NS),
    ]
    for node in forest:
        parts.append("      <m:%s>" % tag)
        parts.append(node_to_xml(node, indent=0, pretty=True))
        parts.append("      </m:%s>" % tag)
    parts.append("    </m:%s>" % operation)
    parts.append("  </soap:Body>")
    parts.append("</soap:Envelope>")
    return "\n".join(parts)


def encode_request(operation: str, namespace: str, params: Sequence[Node]) -> str:
    """Serialize an invocation request."""
    xml_text = _wrap(operation, namespace, params, "param")
    _count_bytes("out", "request", xml_text)
    return xml_text


def encode_response(operation: str, namespace: str, results: Sequence[Node]) -> str:
    """Serialize an invocation response."""
    xml_text = _wrap(operation + "Response", namespace, results, "result")
    _count_bytes("out", "response", xml_text)
    return xml_text


def encode_fault(fault_code: str, fault_string: str) -> str:
    """Serialize a SOAP fault."""
    from xml.sax.saxutils import escape

    return "\n".join(
        [
            '<soap:Envelope xmlns:soap="%s">' % SOAP_NS,
            "  <soap:Body>",
            "    <soap:Fault>",
            "      <faultcode>%s</faultcode>" % escape(fault_code),
            "      <faultstring>%s</faultstring>" % escape(fault_string),
            "    </soap:Fault>",
            "  </soap:Body>",
            "</soap:Envelope>",
        ]
    )


def _decode(xml_text: str, expected_tag: str) -> SoapEnvelope:
    try:
        root = ET.fromstring(xml_text)
    except ET.ParseError as exc:
        raise DocumentParseError("malformed SOAP envelope: %s" % exc) from exc
    if root.tag != _ENVELOPE:
        raise DocumentParseError("not a SOAP envelope: %r" % root.tag)
    body = root.find(_BODY)
    if body is None or len(body) != 1:
        raise DocumentParseError("SOAP body must contain exactly one element")
    payload = body[0]
    if payload.tag == _FAULT:
        code = payload.findtext("faultcode", default="Server")
        string = payload.findtext("faultstring", default="")
        return SoapEnvelope("Fault", "", (), True, code, string)

    if not payload.tag.startswith("{"):
        raise DocumentParseError("operation element must be namespaced")
    namespace, _, operation = payload.tag[1:].partition("}")
    forest: List[Node] = []
    wrapper_tag = "{%s}%s" % (namespace, expected_tag)
    for wrapper in payload:
        if wrapper.tag != wrapper_tag:
            raise DocumentParseError(
                "unexpected element %r in SOAP payload" % wrapper.tag
            )
        inner = list(wrapper)
        if len(inner) != 1:
            text = (wrapper.text or "").strip()
            if inner or not text:
                raise DocumentParseError(
                    "each %s must wrap exactly one tree" % expected_tag
                )
            from repro.doc.nodes import Text

            forest.append(Text(text))
            continue
        forest.append(node_from_xml(ET.tostring(inner[0], encoding="unicode")))
    return SoapEnvelope(operation, namespace, tuple(forest))


def decode_request(xml_text: str) -> SoapEnvelope:
    """Parse a request envelope back into the parameter forest."""
    _count_bytes("in", "request", xml_text)
    return _decode(xml_text, "param")


def decode_response(xml_text: str) -> SoapEnvelope:
    """Parse a response envelope; faults become :class:`SoapEnvelope`s too."""
    _count_bytes("in", "response", xml_text)
    envelope = _decode(xml_text, "result")
    return envelope


def raise_if_fault(envelope: SoapEnvelope) -> SoapEnvelope:
    """Turn a fault envelope into a :class:`ServiceFault` exception.

    The fault *class* is reconstructed from the wire fault code, so the
    transient/permanent taxonomy survives the SOAP round-trip and the
    resilient invocation layer can decide whether retrying makes sense.
    """
    if not envelope.is_fault:
        return envelope
    code, message = envelope.fault_code, envelope.fault_string
    if "Transient" in code:
        raise TransientFault(message, fault_code=code)
    if code.startswith("Client") or "Permanent" in code or "Unavailable" in code:
        raise PermanentFault(message, fault_code=code)
    raise ServiceFault(message, fault_code=code)
