"""Access control lists for service invocation.

The paper motivates restricted invocations with access rights (the
``InACL`` predicate of Section 2.1 "verifies if the client has the
necessary access privileges for executing the given function").  The
model here is a plain principal → allowed-functions map with an optional
public set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Optional, Set


@dataclass
class AccessControlList:
    """Who may invoke what."""

    grants: Dict[str, Set[str]] = field(default_factory=dict)
    public: Set[str] = field(default_factory=set)

    def grant(self, principal: str, function_name: str) -> "AccessControlList":
        """Allow one principal to invoke one function."""
        self.grants.setdefault(principal, set()).add(function_name)
        return self

    def make_public(self, function_name: str) -> "AccessControlList":
        """Allow everyone (including anonymous callers) to invoke it."""
        self.public.add(function_name)
        return self

    def revoke(self, principal: str, function_name: str) -> "AccessControlList":
        """Withdraw a grant (no-op if absent)."""
        self.grants.get(principal, set()).discard(function_name)
        return self

    def allows(self, principal: Optional[str], function_name: str) -> bool:
        """InACL: may the principal invoke the function?"""
        if function_name in self.public:
            return True
        if principal is None:
            return False
        return function_name in self.grants.get(principal, set())

    def allowed_functions(self, principal: Optional[str]) -> FrozenSet[str]:
        """Everything a principal may invoke."""
        allowed = set(self.public)
        if principal is not None:
            allowed |= self.grants.get(principal, set())
        return frozenset(allowed)
