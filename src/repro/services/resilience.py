"""A resilient invocation layer for the service fabric.

The Schema Enforcement module materializes embedded calls at exchange
time (Section 7), against providers that are unreliable by assumption —
"two consecutive calls may return a different result", and sometimes no
result at all.  :class:`ResilientInvoker` wraps any ``FunctionCall ->
forest`` invoker with the machinery a production peer needs:

- **retries** with exponential backoff and deterministic, seeded jitter,
  applied to :class:`repro.errors.TransientFault`\\ s only (``Client``
  faults are permanent — the same request would be rejected again);
- **deadlines and budgets** — a per-call timeout, a per-document wall
  deadline and a per-document attempt budget;
- a per-endpoint **circuit breaker** (closed → open → half-open) so a
  dead provider is probed, not hammered;
- a :class:`FaultReport` counting every attempt, retry, fault, breaker
  transition and dead function, so transfer receipts can say exactly
  what the exchange cost.

When a call cannot be completed the invoker raises
:class:`repro.errors.FunctionUnavailableError`; the rewrite engine's
AUTO mode reacts by re-analyzing the word with the dead function marked
non-invocable (degrade-and-continue) instead of aborting the document.

Time is pluggable: the default :class:`SimulatedClock` advances on
``sleep`` without waiting, which keeps retried test runs instant *and*
deterministic; :class:`WallClock` provides production-style waits.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.doc.nodes import FunctionCall, Node
from repro.exec.fingerprint import call_fingerprint
from repro.errors import (
    FunctionUnavailableError,
    PermanentFault,
    ServiceFault,
    TransientFault,
)
from repro.obs import context as obs

#: What a resilient invoker wraps and what it is: ``FunctionCall -> forest``.
Invoker = Callable[[FunctionCall], Sequence[Node]]


class SimulatedClock:
    """A deterministic clock whose ``sleep`` advances time instantly.

    Sharing one instance between a :class:`ResilientInvoker` and the
    latency-injecting responders makes timeouts observable without any
    real waiting.
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)
        self._lock = threading.Lock()

    def now(self) -> float:
        with self._lock:
            return self._now

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            with self._lock:
                self._now += seconds


class WallClock:
    """The real monotonic clock (production-style backoff waits)."""

    def now(self) -> float:
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)


def is_transient(fault: ServiceFault) -> bool:
    """The default fault taxonomy, robust to the SOAP round-trip.

    Typed faults answer for themselves; plain :class:`ServiceFault`\\ s
    (including ones reconstructed from wire fault codes) are classified
    by code: ``Client`` faults and anything marked permanent or
    unavailable are not retried, everything else (``Server``) is.
    """
    if isinstance(fault, TransientFault):
        return True
    if isinstance(fault, PermanentFault):
        return False
    code = fault.fault_code or "Server"
    if code.startswith("Client"):
        return False
    if "Permanent" in code or "Unavailable" in code:
        return False
    return True


@dataclass
class ResiliencePolicy:
    """Knobs of the resilient invocation layer (all optional).

    The defaults tolerate the fabric's stock fault injection: with
    ``flaky_responder(fail_every=3)`` on every operation an exchange
    completes, deterministically, with one retry per third call.
    """

    max_attempts: int = 4  # physical tries per logical call
    base_delay: float = 0.05  # first backoff, seconds
    backoff_multiplier: float = 2.0
    max_delay: float = 2.0  # backoff cap
    jitter: float = 0.5  # extra uniform(0, jitter*delay), seeded
    jitter_seed: int = 0
    call_timeout: Optional[float] = None  # per-call deadline, seconds
    document_deadline: Optional[float] = None  # whole-exchange deadline
    call_budget: Optional[int] = None  # max physical attempts per document
    breaker_threshold: int = 5  # consecutive faults that open a breaker
    breaker_cooldown: float = 1.0  # seconds open before half-open
    classify: Callable[[ServiceFault], bool] = is_transient
    clock_factory: Callable[[], object] = SimulatedClock

    def backoff(self, attempt: int, rng: random.Random) -> float:
        """The delay after a failed ``attempt`` (1-based), with jitter."""
        delay = min(
            self.max_delay,
            self.base_delay * self.backoff_multiplier ** (attempt - 1),
        )
        if self.jitter > 0:
            delay += rng.uniform(0.0, self.jitter * delay)
        return delay


#: Circuit breaker states.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


@dataclass
class CircuitBreaker:
    """One endpoint's closed/open/half-open breaker.

    Closed: calls flow, consecutive faults are counted.  Open: calls are
    rejected without touching the endpoint.  After ``cooldown`` seconds
    the breaker half-opens and admits a single probe — success closes
    it, failure re-opens it immediately.
    """

    threshold: int = 5
    cooldown: float = 1.0
    state: str = CLOSED
    consecutive_failures: int = 0
    opened_at: float = 0.0
    opens: int = 0  # lifetime count of closed/half-open -> open transitions

    def allow(self, now: float) -> bool:
        if self.state == OPEN and now - self.opened_at >= self.cooldown:
            self.state = HALF_OPEN
        return self.state != OPEN

    def record_success(self) -> None:
        self.state = CLOSED
        self.consecutive_failures = 0

    def record_failure(self, now: float) -> None:
        self.consecutive_failures += 1
        if self.state == HALF_OPEN or self.consecutive_failures >= self.threshold:
            if self.state != OPEN:
                self.opens += 1
            self.state = OPEN
            self.opened_at = now


@dataclass
class FaultReport:
    """Everything one resilient invoker observed (per exchange).

    ``calls`` are logical invocations requested by the rewriter;
    ``attempts`` are physical tries against services (retries included,
    breaker rejections excluded).  ``recovered_calls`` succeeded after
    at least one fault — the exchanges that would have aborted without
    this layer.
    """

    calls: int = 0
    attempts: int = 0
    retries: int = 0  # backoff-then-try-again transitions
    transient_faults: int = 0
    permanent_faults: int = 0
    timeouts: int = 0
    breaker_opens: int = 0
    breaker_rejections: int = 0  # fast failures while a breaker was open
    deadline_expirations: int = 0
    budget_denials: int = 0
    recovered_calls: int = 0
    backoff_seconds: float = 0.0
    faults_by_function: Dict[str, int] = field(default_factory=dict)
    retries_by_function: Dict[str, int] = field(default_factory=dict)
    dead_functions: List[str] = field(default_factory=list)

    @property
    def faults(self) -> int:
        """Total faults observed (transient + permanent + timeouts)."""
        return self.transient_faults + self.permanent_faults + self.timeouts

    def summary(self) -> str:
        parts = [
            "%d call(s), %d attempt(s), %d retr%s, %d fault(s)"
            % (
                self.calls,
                self.attempts,
                self.retries,
                "y" if self.retries == 1 else "ies",
                self.faults,
            )
        ]
        if self.breaker_opens:
            parts.append("%d breaker open(s)" % self.breaker_opens)
        if self.dead_functions:
            parts.append("dead: %s" % ", ".join(self.dead_functions))
        return "; ".join(parts)

    def __str__(self) -> str:
        return self.summary()


class ResilientInvoker:
    """Wrap an invoker with retries, deadlines and circuit breakers.

    The wrapper is itself an invoker (``FunctionCall -> forest``), so it
    drops into :class:`repro.rewriting.RewriteEngine` and the Schema
    Enforcement module unchanged.  One instance is scoped to one
    exchange: its :class:`FaultReport`, document deadline, attempt
    budget and breaker states all reset with a fresh instance (which is
    what :meth:`repro.axml.peer.AXMLPeer.invoker` creates per transfer).

    Args:
        inner: the transport invoker being protected.
        policy: the :class:`ResiliencePolicy`; defaults throughout.
        endpoint_of: maps a call to its breaker key; defaults to the
            node's ``endpointURL`` (falling back to the function name).
            :meth:`repro.services.registry.ServiceRegistry.make_invoker`
            passes the registry's own resolution.
        clock: shared time source; defaults to the policy's factory.
    """

    def __init__(
        self,
        inner: Invoker,
        policy: Optional[ResiliencePolicy] = None,
        endpoint_of: Optional[Callable[[FunctionCall], str]] = None,
        clock=None,
    ):
        self._inner = inner
        self.policy = policy or ResiliencePolicy()
        self._endpoint_of = endpoint_of or (
            lambda call: call.endpoint or call.name
        )
        self.clock = clock if clock is not None else self.policy.clock_factory()
        self.report = FaultReport()
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._dead: Dict[str, str] = {}  # function -> first give-up reason
        #: Guards the report, breakers and dead set: one invoker instance
        #: is shared by every worker of the concurrent materialization
        #: scheduler, so budgets and breaker state must stay coherent.
        self._lock = threading.RLock()
        self._started_at = self.clock.now()

    def _jitter_rng(self, call: FunctionCall) -> random.Random:
        """A fresh RNG derived from ``(jitter_seed, call fingerprint)``.

        A single shared ``random.Random`` would be mutated from every
        worker thread, making backoff sequences depend on scheduling
        order.  Deriving per logical call keeps jitter reproducible: a
        given call sees the same backoff sequence at any worker count
        (string seeding hashes deterministically, unlike ``hash()``).
        """
        return random.Random(
            "%s|%s" % (self.policy.jitter_seed, call_fingerprint(call))
        )

    # -- introspection ----------------------------------------------------

    def breaker_for(self, endpoint: str) -> CircuitBreaker:
        with self._lock:
            breaker = self._breakers.get(endpoint)
            if breaker is None:
                breaker = CircuitBreaker(
                    threshold=self.policy.breaker_threshold,
                    cooldown=self.policy.breaker_cooldown,
                )
                self._breakers[endpoint] = breaker
            return breaker

    @property
    def breakers(self) -> Dict[str, CircuitBreaker]:
        """Breaker state by endpoint (read-only use, please)."""
        with self._lock:
            return dict(self._breakers)

    # -- the invoker ------------------------------------------------------

    def __call__(self, call: FunctionCall) -> Sequence[Node]:
        try:
            endpoint = self._endpoint_of(call)
        except Exception:
            endpoint = call.endpoint or call.name
        with self._lock:
            self.report.calls += 1
        metrics = obs.metrics()
        if metrics.enabled:
            metrics.counter(
                "repro_invocations_total", "Logical invocations requested"
            ).inc(function=call.name)

        with obs.tracer().span(
            "invoke", function=call.name, endpoint=endpoint
        ) as span:
            forest = self._call_with_retries(call, endpoint, metrics)
            span.set(outcome="ok", outputs=len(forest))
            return forest

    def _breaker_opened(self, delta: int, endpoint: str) -> None:
        """Account for breaker open transitions caused by one failure."""
        with self._lock:
            self.report.breaker_opens += delta
        if delta:
            obs.tracer().event("breaker-open", endpoint=endpoint)
            metrics = obs.metrics()
            if metrics.enabled:
                metrics.counter(
                    "repro_breaker_transitions_total",
                    "Circuit breaker state transitions",
                ).inc(delta, to="open", endpoint=endpoint)

    def _call_with_retries(
        self, call: FunctionCall, endpoint: str, metrics
    ) -> Sequence[Node]:
        """The retry/breaker/deadline loop for one logical call."""
        policy, report, clock = self.policy, self.report, self.clock
        tracer = obs.tracer()

        with self._lock:
            dead_reason = self._dead.get(call.name)
        if dead_reason is not None:
            # Fail fast: this function already exhausted its chances in
            # this exchange (possible-mode backtracking may ask again).
            raise FunctionUnavailableError(call.name, endpoint, dead_reason)

        rng = self._jitter_rng(call)
        breaker = self.breaker_for(endpoint)
        attempt = 0
        last_fault: Optional[ServiceFault] = None
        while True:
            now = clock.now()
            if (
                policy.document_deadline is not None
                and now - self._started_at > policy.document_deadline
            ):
                with self._lock:
                    report.deadline_expirations += 1
                raise self._give_up(
                    call, endpoint,
                    "document deadline of %.3fs expired" % policy.document_deadline,
                )
            with self._lock:
                budget_exhausted = (
                    policy.call_budget is not None
                    and report.attempts >= policy.call_budget
                )
                if budget_exhausted:
                    report.budget_denials += 1
            if budget_exhausted:
                raise self._give_up(
                    call, endpoint,
                    "per-document budget of %d attempt(s) exhausted"
                    % policy.call_budget,
                )
            attempt += 1

            with self._lock:
                allowed = breaker.allow(now)
                if not allowed:
                    report.breaker_rejections += 1
            if not allowed:
                tracer.event("breaker-rejected", endpoint=endpoint)
                if metrics.enabled:
                    metrics.counter(
                        "repro_breaker_rejections_total",
                        "Fast failures while a breaker was open",
                    ).inc(endpoint=endpoint)
                last_fault = TransientFault(
                    "circuit open for endpoint %r" % endpoint
                )
            else:
                with self._lock:
                    report.attempts += 1
                tracer.event("attempt", n=attempt)
                if metrics.enabled:
                    metrics.counter(
                        "repro_invocation_attempts_total",
                        "Physical tries against services",
                    ).inc(function=call.name)
                started = clock.now()
                opens_before = breaker.opens
                try:
                    forest = tuple(self._inner(call))
                except ServiceFault as fault:
                    transient = policy.classify(fault)
                    with self._lock:
                        self._record_fault(call, transient=transient)
                        breaker.record_failure(clock.now())
                    self._breaker_opened(
                        breaker.opens - opens_before, endpoint
                    )
                    kind = "transient" if transient else "permanent"
                    tracer.event("fault", kind=kind, function=call.name)
                    if metrics.enabled:
                        metrics.counter(
                            "repro_invocation_faults_total",
                            "Faults observed by the resilient invoker",
                        ).inc(kind=kind)
                    last_fault = fault
                    if not transient:
                        raise self._give_up(
                            call, endpoint, "permanent fault: %s" % fault
                        ) from fault
                else:
                    elapsed = clock.now() - started
                    if (
                        policy.call_timeout is not None
                        and elapsed > policy.call_timeout
                    ):
                        with self._lock:
                            report.timeouts += 1
                            self._count(report.faults_by_function, call.name)
                            breaker.record_failure(clock.now())
                        self._breaker_opened(
                            breaker.opens - opens_before, endpoint
                        )
                        tracer.event(
                            "fault", kind="timeout", function=call.name,
                            elapsed=elapsed,
                        )
                        if metrics.enabled:
                            metrics.counter(
                                "repro_invocation_faults_total",
                                "Faults observed by the resilient invoker",
                            ).inc(kind="timeout")
                        last_fault = TransientFault(
                            "call to %r timed out after %.3fs (limit %.3fs)"
                            % (call.name, elapsed, policy.call_timeout)
                        )
                    else:
                        with self._lock:
                            breaker.record_success()
                            if attempt > 1:
                                report.recovered_calls += 1
                        return forest

            if attempt >= policy.max_attempts:
                raise self._give_up(
                    call, endpoint,
                    "retries exhausted after %d attempt(s); last fault: %s"
                    % (attempt, last_fault),
                ) from last_fault
            delay = policy.backoff(attempt, rng)
            with self._lock:
                report.retries += 1
                self._count(report.retries_by_function, call.name)
                report.backoff_seconds += delay
            tracer.event("retry", delay=round(delay, 6))
            if metrics.enabled:
                metrics.counter(
                    "repro_invocation_retries_total",
                    "Backoff-then-try-again transitions",
                ).inc(function=call.name)
                metrics.counter(
                    "repro_backoff_seconds_total",
                    "Total backoff delay incurred",
                ).inc(delay)
            clock.sleep(delay)

    # -- internals --------------------------------------------------------

    def _record_fault(self, call: FunctionCall, transient: bool) -> None:
        report = self.report
        if transient:
            report.transient_faults += 1
        else:
            report.permanent_faults += 1
        self._count(report.faults_by_function, call.name)

    @staticmethod
    def _count(table: Dict[str, int], key: str) -> None:
        table[key] = table.get(key, 0) + 1

    def _give_up(
        self, call: FunctionCall, endpoint: str, reason: str
    ) -> FunctionUnavailableError:
        with self._lock:
            if call.name not in self._dead:
                self._dead[call.name] = reason
                self.report.dead_functions.append(call.name)
        return FunctionUnavailableError(call.name, endpoint, reason)
