"""The paper's function-pattern predicates, as live services.

Section 2.1's ``Forecast`` pattern requires ``UDDIF ∧ InACL``: the
function must be registered in a particular UDDI registry *and* the
client must hold access rights.  These factories close over the live
registry / ACL so the predicates observe later registrations, exactly
like calling the predicate Web service each time would.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.services.acl import AccessControlList
from repro.services.registry import ServiceRegistry


def uddif(registry: ServiceRegistry) -> Callable[[str], bool]:
    """The UDDIF predicate: is the function registered?"""
    return registry.uddif_predicate()


def in_acl(
    acl: AccessControlList, principal: Optional[str]
) -> Callable[[str], bool]:
    """The InACL predicate: may this principal invoke the function?"""

    def predicate(function_name: str) -> bool:
        return acl.allows(principal, function_name)

    return predicate
