"""A simulated Web-service fabric (substitute for real SOAP services).

The paper's implementation calls real SOAP endpoints described by WSDL.
Offline, we substitute an in-process fabric that preserves everything the
algorithms observe:

- :mod:`repro.services.service` — endpoints hosting operations with
  declared signatures, per-call accounting (side effects, costs);
- :mod:`repro.services.registry` — a UDDI-like registry that routes
  function nodes to operations and provides the ``UDDIF`` predicate;
- :mod:`repro.services.soap` — SOAP-style envelopes: every simulated
  call round-trips through XML serialization, exercising the same
  code paths a network transport would;
- :mod:`repro.services.responders` — handler factories: seeded sampling
  from the declared output type, adversarial corner-case outputs,
  scripted sequences, and fault/latency/outage injection;
- :mod:`repro.services.resilience` — the resilient invocation layer:
  retries with seeded backoff, deadlines and budgets, per-endpoint
  circuit breakers, and per-exchange fault reports;
- :mod:`repro.services.predicates` / :mod:`repro.services.acl` — the
  ``UDDIF`` / ``InACL`` style predicates used by function patterns.
"""

from repro.services.service import CallRecord, Operation, Service
from repro.services.registry import ServiceRegistry
from repro.services.soap import SoapEnvelope, decode_request, encode_request
from repro.services.responders import (
    adversarial_responder,
    constant_responder,
    flaky_responder,
    latency_responder,
    outage_responder,
    sampling_responder,
    scripted_responder,
)
from repro.services.resilience import (
    CircuitBreaker,
    FaultReport,
    ResiliencePolicy,
    ResilientInvoker,
    SimulatedClock,
    WallClock,
    is_transient,
)
from repro.services.acl import AccessControlList
from repro.services.predicates import in_acl, uddif

__all__ = [
    "Service",
    "Operation",
    "CallRecord",
    "ServiceRegistry",
    "SoapEnvelope",
    "encode_request",
    "decode_request",
    "sampling_responder",
    "adversarial_responder",
    "scripted_responder",
    "constant_responder",
    "flaky_responder",
    "latency_responder",
    "outage_responder",
    "ResilientInvoker",
    "ResiliencePolicy",
    "CircuitBreaker",
    "FaultReport",
    "SimulatedClock",
    "WallClock",
    "is_transient",
    "AccessControlList",
    "uddif",
    "in_acl",
]
