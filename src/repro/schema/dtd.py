"""DTD import: the paper's "schemas (like DTD and XML Schema)".

The simple model of Section 2 is explicitly DTD-like; this module parses
a useful DTD subset into a :class:`~repro.schema.model.Schema` so
existing DTDs can serve as exchange schemas directly:

- ``<!ELEMENT name (content)>`` with sequences ``,``, choices ``|`` and
  the ``* + ?`` occurrence operators;
- ``#PCDATA`` → the ``data`` keyword; ``EMPTY`` → epsilon; ``ANY`` →
  the wildcard;
- function declarations are a non-standard extension, spelled as a
  processing-instruction-style comment so the file stays a valid DTD::

      <!-- repro:function Get_Temp (city) : (temp) -->

Mixed-content models beyond plain ``(#PCDATA)`` are rejected (the simple
data model has no mixed content).
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.errors import SchemaError
from repro.regex import ast
from repro.regex.ast import Regex
from repro.automata.symbols import DATA

_ELEMENT_RE = re.compile(
    r"<!ELEMENT\s+([A-Za-z_][\w.\-]*)\s+(.*?)>", re.DOTALL
)
_FUNCTION_RE = re.compile(
    r"<!--\s*repro:function\s+([A-Za-z_][\w.\-]*)\s*"
    r"\((.*?)\)\s*:\s*\((.*?)\)\s*-->",
    re.DOTALL,
)
_COMMENT_RE = re.compile(r"<!--(?!\s*repro:function).*?-->", re.DOTALL)


def _parse_content(text: str, element: str) -> Regex:
    """Parse one DTD content model into a regex."""
    text = text.strip()
    if text == "EMPTY":
        return ast.EPSILON
    if text == "ANY":
        return ast.star(ast.AnySymbol())
    if text in ("(#PCDATA)", "( #PCDATA )", "(#PCDATA)*"):
        return ast.atom(DATA)
    if "#PCDATA" in text:
        raise SchemaError(
            "mixed content in <!ELEMENT %s ...> is not part of the simple "
            "model" % element
        )
    return _ContentParser(text, element).parse()


class _ContentParser:
    """Recursive-descent parser for DTD content particles."""

    def __init__(self, text: str, element: str):
        self.text = text
        self.element = element
        self.pos = 0

    def error(self, message: str) -> SchemaError:
        return SchemaError(
            "in <!ELEMENT %s>: %s at offset %d of %r"
            % (self.element, message, self.pos, self.text)
        )

    def skip_ws(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos].isspace():
            self.pos += 1

    def peek(self) -> str:
        self.skip_ws()
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def parse(self) -> Regex:
        expr = self.particle()
        self.skip_ws()
        if self.pos != len(self.text):
            raise self.error("trailing content")
        return expr

    def particle(self) -> Regex:
        if self.peek() != "(":
            return self.occurs(self.name())
        self.pos += 1  # consume '('
        first = self.particle()
        separator = self.peek()
        items = [first]
        if separator in (",", "|"):
            while self.peek() == separator:
                self.pos += 1
                items.append(self.particle())
        if self.peek() != ")":
            raise self.error("expected ')'")
        self.pos += 1
        inner = (
            ast.seq(*items) if separator != "|" else ast.alt(*items)
        )
        return self.occurs(inner)

    def occurs(self, inner: Regex) -> Regex:
        ch = self.text[self.pos] if self.pos < len(self.text) else ""
        if ch == "*":
            self.pos += 1
            return ast.star(inner)
        if ch == "+":
            self.pos += 1
            return ast.plus(inner)
        if ch == "?":
            self.pos += 1
            return ast.opt(inner)
        return inner

    def name(self) -> Regex:
        self.skip_ws()
        match = re.match(r"[A-Za-z_][\w.\-]*", self.text[self.pos:])
        if not match:
            raise self.error("expected an element name")
        self.pos += len(match.group())
        return ast.atom(match.group())


def parse_dtd(source: str, root: Optional[str] = None):
    """Parse a DTD (plus ``repro:function`` comments) into a Schema.

    The first declared element becomes the root unless ``root`` is given.
    """
    from repro.schema.model import FunctionSignature, Schema

    functions: Dict[str, FunctionSignature] = {}
    for match in _FUNCTION_RE.finditer(source):
        name, inputs, outputs = match.groups()
        if name in functions:
            raise SchemaError("function %r declared twice in DTD" % name)
        functions[name] = FunctionSignature(
            _parse_content("(%s)" % inputs, name) if inputs.strip() else ast.EPSILON,
            _parse_content("(%s)" % outputs, name) if outputs.strip() else ast.EPSILON,
        )

    stripped = _COMMENT_RE.sub("", source)
    label_types: Dict[str, Regex] = {}
    order: List[str] = []
    for match in _ELEMENT_RE.finditer(stripped):
        name, content = match.group(1), match.group(2)
        if name in label_types:
            raise SchemaError("element %r declared twice in DTD" % name)
        label_types[name] = _parse_content(content, name)
        order.append(name)

    if not label_types:
        raise SchemaError("the DTD declares no elements")
    chosen_root = root or order[0]
    if chosen_root not in label_types:
        raise SchemaError("root %r is not declared by the DTD" % chosen_root)
    return Schema(label_types, functions, {}, chosen_root)


def schema_to_dtd(schema) -> str:
    """Emit a schema as a DTD (functions as ``repro:function`` comments).

    Wildcard-bearing content models map to ``ANY`` only when they are the
    whole model; embedded wildcards are not expressible in DTDs and raise.
    """
    from repro.regex.ast import AnySymbol, Atom, Star

    lines: List[str] = []
    for name in sorted(schema.label_types):
        expr = schema.label_types[name]
        if isinstance(expr, Atom) and expr.symbol == DATA:
            content = "(#PCDATA)"
        elif isinstance(expr, Star) and isinstance(expr.item, AnySymbol):
            content = "ANY"
        else:
            content = _render(expr)
            if not content.startswith("("):
                content = "(%s)" % content
        lines.append("<!ELEMENT %s %s>" % (name, content))
    for name in sorted(schema.functions):
        signature = schema.functions[name]
        lines.append(
            "<!-- repro:function %s (%s) : (%s) -->"
            % (name, _render_bare(signature.input_type),
               _render_bare(signature.output_type))
        )
    return "\n".join(lines)


def _render(expr: Regex) -> str:
    from repro.regex.ast import (
        Alt, AnySymbol, Atom, Empty, Epsilon, Repeat, Seq, Star,
    )

    if isinstance(expr, Atom):
        if expr.symbol == DATA:
            raise SchemaError("#PCDATA may only be a whole content model")
        return expr.symbol
    if isinstance(expr, Epsilon):
        return "EMPTY"
    if isinstance(expr, Empty):
        raise SchemaError("the empty language is not expressible in a DTD")
    if isinstance(expr, AnySymbol):
        raise SchemaError("embedded wildcards are not expressible in a DTD")
    if isinstance(expr, Seq):
        return "(%s)" % ",".join(_render(i) for i in expr.items)
    if isinstance(expr, Alt):
        return "(%s)" % "|".join(_render(o) for o in expr.options)
    if isinstance(expr, Star):
        return _render_group(expr.item) + "*"
    if isinstance(expr, Repeat):
        if expr.low == 1 and expr.high is None:
            return _render_group(expr.item) + "+"
        if expr.low == 0 and expr.high == 1:
            return _render_group(expr.item) + "?"
        raise SchemaError(
            "bounded repetition {%s,%s} is not expressible in a DTD"
            % (expr.low, expr.high)
        )
    raise TypeError("unknown regex node %r" % (expr,))


def _render_group(expr: Regex) -> str:
    text = _render(expr)
    return text if text.startswith("(") else "(%s)" % text


def _render_bare(expr: Regex) -> str:
    from repro.regex.ast import Atom, Epsilon

    if isinstance(expr, Epsilon):
        return ""
    if isinstance(expr, Atom) and expr.symbol == DATA:
        # Whole-signature data types round-trip as #PCDATA (our
        # repro:function comments reuse the DTD spelling).
        return "#PCDATA"
    text = _render(expr)
    return text[1:-1] if text.startswith("(") and text.endswith(")") else text
