"""Seeded instance generation from schemas.

Several parts of the system need to *produce* documents that conform to a
type expression:

- the simulated services must return output instances of their declared
  output types (including adversarial corner cases),
- the Section 6 compatibility check and the benchmarks need random
  instances of whole schemas,
- the tests cross-check the validator against generated instances.

Generation is seeded (deterministic per :class:`random.Random`) and is
guaranteed to terminate: a pre-computed minimal-instance-size fixpoint
detects labels with no finite instances and steers the generator toward
cheapest completions once the depth budget runs out.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.automata.ops import regex_to_dfa, sample_word
from repro.automata.symbols import DATA, OTHER, Alphabet
from repro.doc.document import Document
from repro.doc.nodes import Element, FunctionCall, Node, Text
from repro.errors import SchemaError
from repro.regex.ast import (
    Alt,
    AnySymbol,
    Atom,
    Empty,
    Epsilon,
    Regex,
    Repeat,
    Seq,
    Star,
)
from repro.schema.model import Schema

#: Vocabulary for random data leaves.
_WORDS = (
    "Paris", "London", "15", "April", "The Sun", "Picasso", "18C",
    "04/10/2002", "rain", "42", "exhibits", "news",
)

#: Label used to materialize wildcard (`any`) positions.
_WILDCARD_LABEL = "any-element"


def min_word_cost(expr: Regex, cost: Dict[str, float], default: float = 1.0) -> float:
    """Minimal total symbol cost over all words of ``lang(expr)``.

    Computed structurally on the regex — no automaton needed; ``math.inf``
    means the language is empty or requires symbols with infinite cost.
    """
    if isinstance(expr, Epsilon):
        return 0.0
    if isinstance(expr, Empty):
        return math.inf
    if isinstance(expr, Atom):
        return cost.get(expr.symbol, default)
    if isinstance(expr, AnySymbol):
        return default
    if isinstance(expr, Seq):
        return sum(min_word_cost(item, cost, default) for item in expr.items)
    if isinstance(expr, Alt):
        return min(min_word_cost(option, cost, default) for option in expr.options)
    if isinstance(expr, Star):
        return 0.0
    if isinstance(expr, Repeat):
        if expr.low == 0:
            return 0.0
        return expr.low * min_word_cost(expr.item, cost, default)
    raise TypeError("unknown regex node %r" % (expr,))


def cheapest_word(expr: Regex, cost: Dict[str, float], default: float = 1.0) -> Tuple[str, ...]:
    """An accepted word achieving :func:`min_word_cost`.

    Wildcard positions materialize as :data:`~repro.automata.symbols.OTHER`.
    Raises :class:`ValueError` when the language admits no finite-cost word.
    """
    if isinstance(expr, Epsilon):
        return ()
    if isinstance(expr, Empty):
        raise ValueError("empty language has no words")
    if isinstance(expr, Atom):
        if cost.get(expr.symbol, default) == math.inf:
            raise ValueError("symbol %r has no finite instance" % expr.symbol)
        return (expr.symbol,)
    if isinstance(expr, AnySymbol):
        return (OTHER,)
    if isinstance(expr, Seq):
        word: Tuple[str, ...] = ()
        for item in expr.items:
            word += cheapest_word(item, cost, default)
        return word
    if isinstance(expr, Alt):
        best = min(expr.options, key=lambda o: min_word_cost(o, cost, default))
        return cheapest_word(best, cost, default)
    if isinstance(expr, Star):
        return ()
    if isinstance(expr, Repeat):
        if expr.low == 0:
            return ()
        return cheapest_word(expr.item, cost, default) * expr.low
    raise TypeError("unknown regex node %r" % (expr,))


def min_instance_sizes(schema: Schema) -> Dict[str, float]:
    """Fixpoint: minimal node count of an instance subtree per symbol.

    Data leaves and undeclared symbols cost 1; a declared label costs one
    plus the cheapest children word; a function node costs one plus the
    cheapest parameter word.  ``math.inf`` marks symbols with no finite
    instance (e.g. ``tau(a) = a``).
    """
    sizes: Dict[str, float] = {DATA: 1.0, OTHER: 1.0}
    for label in schema.label_types:
        sizes[label] = math.inf
    for name in schema.functions:
        sizes[name] = math.inf
    for name in schema.patterns:
        sizes[name] = math.inf

    changed = True
    while changed:
        changed = False
        for label, expr in schema.label_types.items():
            candidate = 1.0 + min_word_cost(expr, sizes)
            if candidate < sizes[label]:
                sizes[label] = candidate
                changed = True
        for name, signature in schema.functions.items():
            candidate = 1.0 + min_word_cost(signature.input_type, sizes)
            if candidate < sizes[name]:
                sizes[name] = candidate
                changed = True
        for name, pattern in schema.patterns.items():
            admitted = [
                f
                for f, sig in schema.functions.items()
                if pattern.admits(f, sig)
            ]
            candidate = min((sizes[f] for f in admitted), default=math.inf)
            if candidate < sizes[name]:
                sizes[name] = candidate
                changed = True
    return sizes


class InstanceGenerator:
    """Seeded generator of schema instances.

    Args:
        schema: the schema to generate instances of.
        rng: the random source; pass a seeded ``random.Random`` for
            reproducible documents.
        max_depth: soft depth budget — below it, children words are
            sampled uniformly-ish from the type DFA; past it the generator
            switches to cheapest completions so generation terminates.
        function_probability: when a sampled word offers both a function
            and a data alternative this biases nothing by itself — it is
            used when *choosing* candidates for pattern atoms.
    """

    def __init__(
        self,
        schema: Schema,
        rng: Optional[random.Random] = None,
        max_depth: int = 8,
        call_bias: float = 1.0,
    ):
        self.schema = schema
        self.rng = rng or random.Random(0)
        self.max_depth = max_depth
        #: Relative weight of function-name symbols when sampling content
        #: words: > 1 biases documents toward intensional content, < 1
        #: toward materialized data, 0 avoids calls wherever a choice
        #: exists.
        self.call_bias = call_bias
        self.sizes = min_instance_sizes(schema)
        self._dfa_cache: Dict[Regex, object] = {}
        self._alphabet = Alphabet.closure(schema.alphabet_symbols())
        self._callable_names = frozenset(schema.functions) | frozenset(
            schema.patterns
        )

    # -- public API -----------------------------------------------------

    def document(self, root_label: Optional[str] = None) -> Document:
        """A random instance with the given (or schema's) root label."""
        label = root_label or self.schema.root
        if label is None:
            raise SchemaError("no root label given and the schema declares none")
        return Document(self.element(label, depth=0))

    def element(self, label: str, depth: int = 0) -> Element:
        """A random instance subtree for a declared label."""
        expr = self.schema.type_of(label)
        if expr is None:
            raise SchemaError("label %r is not declared" % label)
        if self.sizes.get(label, math.inf) == math.inf:
            raise SchemaError("label %r has no finite instances" % label)
        return Element(label, self.forest(expr, depth + 1))

    def function_node(self, name: str, depth: int = 0) -> FunctionCall:
        """A random call node with parameters matching ``tau_in(name)``."""
        input_type = self.schema.input_type(name)
        if input_type is None:
            raise SchemaError("function %r is not declared" % name)
        return FunctionCall(name, self.forest(input_type, depth + 1))

    def output_forest(self, name: str, depth: int = 0) -> Tuple[Node, ...]:
        """A random output instance of a declared function.

        This is what the simulated services return when invoked.
        """
        output_type = self.schema.output_type(name)
        if output_type is None:
            raise SchemaError("function %r is not declared" % name)
        return self.forest(output_type, depth)

    def forest(self, expr: Regex, depth: int = 0) -> Tuple[Node, ...]:
        """A random forest whose root symbols form a word of ``lang(expr)``."""
        word = self._sample_children_word(expr, depth)
        return tuple(self._node_for(symbol, depth) for symbol in word)

    # -- internals --------------------------------------------------------

    def _sample_children_word(self, expr: Regex, depth: int) -> Sequence[str]:
        if depth >= self.max_depth:
            return cheapest_word(expr, self.sizes)
        dfa = self._dfa_cache.get(expr)
        if dfa is None:
            dfa = regex_to_dfa(self._desugared(expr), self._alphabet)
            self._dfa_cache[expr] = dfa
        weight = None
        if self.call_bias != 1.0:
            def weight(symbol: str) -> float:
                if symbol in self._callable_names:
                    return self.call_bias
                return 1.0
        return sample_word(dfa, self.rng, weight=weight)

    def _desugared(self, expr: Regex) -> Regex:
        """Expand pattern atoms to declared candidate functions."""
        from repro.regex.ast import alt, atom
        from repro.schema.model import _substitute

        expansion = {}
        for pattern in self.schema.patterns.values():
            matching = sorted(
                name
                for name, sig in self.schema.functions.items()
                if pattern.admits(name, sig)
            )
            expansion[pattern.name] = alt(*(atom(n) for n in matching))
        return _substitute(expr, expansion)

    def _node_for(self, symbol: str, depth: int) -> Node:
        if symbol == DATA:
            return Text(self.rng.choice(_WORDS))
        if symbol == OTHER:
            return Element(_WILDCARD_LABEL)
        if symbol in self.schema.functions:
            return self.function_node(symbol, depth)
        if symbol in self.schema.patterns:
            pattern = self.schema.patterns[symbol]
            admitted = sorted(
                name
                for name, sig in self.schema.functions.items()
                if pattern.admits(name, sig)
            )
            if not admitted:
                raise SchemaError(
                    "pattern %r admits no declared function" % symbol
                )
            return self.function_node(self.rng.choice(admitted), depth)
        if symbol in self.schema.label_types:
            return self.element(symbol, depth)
        # Undeclared symbol (lenient schemas): an empty element.
        return Element(symbol)
