"""Instance validation (Definition 3).

A document ``t`` is an instance of schema ``s`` iff for every data node
with label ``l`` the symbols of its children form a word of
``lang(tau(l))``, and for every function node with name ``f`` they form a
word of ``lang(tau_in(f))``.  Pattern atoms in the type expressions match
any concrete function the pattern admits.

:func:`validate` walks the whole tree and returns a report carrying every
violation (with its path), rather than failing on the first one — the
Schema Enforcement module reports all problems of a rejected exchange at
once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.automata.glushkov import glushkov_nfa
from repro.automata.symbols import class_matches
from repro.doc.nodes import Element, FunctionCall, Node, Text
from repro.doc.paths import Path, child_word, iter_nodes
from repro.regex.ast import Regex
from repro.schema.model import FunctionSignature, Schema


@dataclass(frozen=True)
class Violation:
    """One reason a document fails to be an instance of a schema."""

    path: Path
    symbol: str
    kind: str  # "undeclared-label" | "undeclared-function" | "content" | "input"
    message: str

    def __str__(self) -> str:
        where = "/" + "/".join(str(i) for i in self.path) if self.path else "/"
        return "%s at %s: %s" % (self.kind, where, self.message)


@dataclass
class ValidationReport:
    """The outcome of validating one document against one schema."""

    violations: List[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True iff the document is an instance of the schema."""
        return not self.violations

    def __bool__(self) -> bool:
        return self.ok

    def __str__(self) -> str:
        if self.ok:
            return "valid"
        return "\n".join(str(v) for v in self.violations)


def _signature_lookup(schema: Schema, sender_schema: Optional[Schema]):
    """Resolve function signatures against the target then sender schema.

    Section 4 assumes common functions have the same definitions in both
    schemas (they come from the same WSDL descriptions); the sender schema
    fills in functions the target does not declare.
    """

    def lookup(name: str) -> Optional[FunctionSignature]:
        signature = schema.signature_of(name)
        if signature is None and sender_schema is not None:
            signature = sender_schema.signature_of(name)
        return signature

    return lookup


def word_matches(
    word: Sequence[str],
    expr: Regex,
    schema: Schema,
    sender_schema: Optional[Schema] = None,
) -> bool:
    """Does a children word belong to ``lang(expr)``, patterns included?

    The word contains concrete symbols (labels, function names, ``#data``)
    while ``expr`` may contain pattern atoms; a pattern atom matches any
    function name it admits.  Implemented as an NFA run with an extended
    guard matcher, so it works for nondeterministic expressions too.
    """
    return _run_word(word, expr, schema, sender_schema).ok


@dataclass(frozen=True)
class WordDiagnosis:
    """Where and why a children word failed to match a content model.

    ``position`` is the index of the offending symbol (== len(word) when
    the word ended too early); ``expected`` lists the symbols (or
    pattern/wildcard descriptions) acceptable at that point.
    """

    ok: bool
    position: int = -1
    found: Optional[str] = None
    expected: Tuple[str, ...] = ()

    def message(self, word: Sequence[str]) -> str:
        if self.ok:
            return "matches"
        expected = " or ".join(self.expected) if self.expected else "nothing"
        if self.position >= len(word):
            return "word ends too early; expected %s" % expected
        return "unexpected %r at position %d; expected %s" % (
            self.found, self.position, expected
        )


def _run_word(
    word: Sequence[str],
    expr: Regex,
    schema: Schema,
    sender_schema: Optional[Schema],
) -> WordDiagnosis:
    lookup = _signature_lookup(schema, sender_schema)
    nfa = glushkov_nfa(expr)

    def guard_matches(guard, symbol: str) -> bool:
        if class_matches(guard, symbol):
            return True
        if isinstance(guard, str) and guard in schema.patterns:
            return schema.patterns[guard].admits(symbol, lookup(symbol))
        return False

    def expected_at(states) -> Tuple[str, ...]:
        from repro.regex.ast import AnySymbol

        found = set()
        for state in states:
            for guard, _target in nfa.edges_from(state):
                if isinstance(guard, AnySymbol):
                    found.add("any element")
                else:
                    found.add(str(guard))
        return tuple(sorted(found))

    current = {nfa.initial}
    for position, symbol in enumerate(word):
        following = set()
        for state in current:
            for guard, target in nfa.edges_from(state):
                if guard_matches(guard, symbol):
                    following.add(target)
        if not following:
            return WordDiagnosis(
                False, position, symbol, expected_at(current)
            )
        current = following
    if current & nfa.accepting:
        return WordDiagnosis(True)
    return WordDiagnosis(False, len(word), None, expected_at(current))


def diagnose_word(
    word: Sequence[str],
    expr: Regex,
    schema: Schema,
    sender_schema: Optional[Schema] = None,
) -> WordDiagnosis:
    """Explain why a children word fails a content model (or confirm it)."""
    return _run_word(word, expr, schema, sender_schema)


def validate(
    document_or_node,
    schema: Schema,
    sender_schema: Optional[Schema] = None,
    strict: bool = True,
) -> ValidationReport:
    """Check Definition 3 over a document (or bare node).

    With ``strict`` (the default) every element label must be declared by
    the schema and every function name must be declared or admitted by at
    least one pattern; with ``strict=False`` undeclared symbols are
    unconstrained, which is the literal reading of Definition 3.
    """
    root: Node = getattr(document_or_node, "root", document_or_node)
    lookup = _signature_lookup(schema, sender_schema)
    report = ValidationReport()

    for path, node in iter_nodes(root):
        if isinstance(node, Text):
            continue
        if isinstance(node, Element):
            expr = schema.type_of(node.label)
            if expr is None:
                if strict:
                    report.violations.append(
                        Violation(
                            path,
                            node.label,
                            "undeclared-label",
                            "element label %r is not declared by the schema"
                            % node.label,
                        )
                    )
                continue
            word = child_word(node)
            diagnosis = _run_word(word, expr, schema, sender_schema)
            if not diagnosis.ok:
                report.violations.append(
                    Violation(
                        path,
                        node.label,
                        "content",
                        "children word %s does not match %s (%s)"
                        % (".".join(word) or "eps", expr,
                           diagnosis.message(word)),
                    )
                )
            continue
        if isinstance(node, FunctionCall):
            signature = lookup(node.name)
            admitted = signature is not None or bool(
                schema.matching_patterns(node.name, None)
            )
            if signature is None:
                if strict and not admitted:
                    report.violations.append(
                        Violation(
                            path,
                            node.name,
                            "undeclared-function",
                            "function %r has no declared signature" % node.name,
                        )
                    )
                continue
            word = child_word(node)
            diagnosis = _run_word(word, signature.input_type, schema, sender_schema)
            if not diagnosis.ok:
                report.violations.append(
                    Violation(
                        path,
                        node.name,
                        "input",
                        "parameters %s do not match input type %s (%s)"
                        % (".".join(word) or "eps", signature.input_type,
                           diagnosis.message(word)),
                    )
                )
    return report


def is_instance(
    document_or_node,
    schema: Schema,
    sender_schema: Optional[Schema] = None,
    strict: bool = True,
) -> bool:
    """Shorthand: True iff :func:`validate` reports no violations."""
    return validate(document_or_node, schema, sender_schema, strict).ok


def is_input_instance(
    forest: Sequence[Node],
    function_name: str,
    schema: Schema,
    sender_schema: Optional[Schema] = None,
) -> bool:
    """Is a forest a valid input instance of ``function_name``?

    Definition 3's dual of the output case: the root symbols must form a
    word of ``tau_in(f)`` and every parameter tree must itself be an
    instance of the schema.
    """
    from repro.doc.nodes import symbol_of

    lookup = _signature_lookup(schema, sender_schema)
    signature = lookup(function_name)
    if signature is None:
        return False
    word = tuple(symbol_of(tree) for tree in forest)
    if not word_matches(word, signature.input_type, schema, sender_schema):
        return False
    return all(
        is_instance(tree, schema, sender_schema, strict=False) for tree in forest
    )


def is_output_instance(
    forest: Sequence[Node],
    function_name: str,
    schema: Schema,
    sender_schema: Optional[Schema] = None,
) -> bool:
    """Is a forest a valid output instance of ``function_name``?

    Definition 3: the root symbols must form a word of ``tau_out(f)`` and
    every tree must itself be an instance of the schema.
    """
    from repro.doc.nodes import symbol_of

    lookup = _signature_lookup(schema, sender_schema)
    signature = lookup(function_name)
    if signature is None:
        return False
    word = tuple(symbol_of(tree) for tree in forest)
    if not word_matches(word, signature.output_type, schema, sender_schema):
        return False
    return all(
        is_instance(tree, schema, sender_schema, strict=False) for tree in forest
    )
