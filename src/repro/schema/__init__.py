"""Document schemas for intensional XML (Definitions 2-3, Section 2.1).

A schema maps element labels to regular expressions over labels *and*
function names, and maps each function name to its signature (input and
output types).  The richer model adds:

- *function patterns* (:mod:`repro.schema.patterns`): a boolean predicate
  over function names plus a required signature — "any weather-forecast
  service registered in this UDDI directory";
- *wildcards*: ``any`` atoms in the type expressions;
- *invocation policies*: the invocable / non-invocable partition that
  restricts which calls a legal rewriting may trigger.

Validation (Definition 3) lives in :mod:`repro.schema.validate`; seeded
instance generation — used by the service simulator and by the schema
compatibility check of Section 6 — in :mod:`repro.schema.generator`.
"""

from repro.schema.model import (
    FunctionPattern,
    FunctionSignature,
    Schema,
    SchemaBuilder,
)
from repro.schema.patterns import (
    InvocationPolicy,
    allow_all,
    allow_only,
    deny,
    name_in_registry,
)
from repro.schema.validate import ValidationReport, Violation, is_instance, validate
from repro.schema.generator import InstanceGenerator
from repro.schema.dtd import parse_dtd, schema_to_dtd

__all__ = [
    "Schema",
    "SchemaBuilder",
    "FunctionSignature",
    "FunctionPattern",
    "InvocationPolicy",
    "allow_all",
    "allow_only",
    "deny",
    "name_in_registry",
    "validate",
    "is_instance",
    "ValidationReport",
    "Violation",
    "InstanceGenerator",
    "parse_dtd",
    "schema_to_dtd",
]
