"""The schema model: ``s = (L, F, P, tau)``.

``tau`` maps each label to a regular expression over ``L ∪ F ∪ P`` (or to
the ``data`` keyword, which we uniformly encode as the reserved ``#data``
atom), and maps each function name or pattern to a signature — a pair of
such expressions (Definition 2, extended with patterns per Section 2.1).

The paper's running example (*)::

    schema = (
        SchemaBuilder()
        .element("newspaper",
                 "title.date.(Get_Temp | temp).(TimeOut | exhibit*)")
        .element("title", "data")
        .element("date", "data")
        .element("temp", "data")
        .element("city", "data")
        .element("exhibit", "title.(Get_Date | date)")
        .function("Get_Temp", "city", "temp")
        .function("TimeOut", "data", "(exhibit | performance)*")
        .function("Get_Date", "title", "date")
        .root("newspaper")
        .build(strict=False)   # (*) leaves `performance` undeclared
    )
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, FrozenSet, Iterable, Optional, Set, Union

from repro.automata.symbols import DATA
from repro.errors import SchemaError
from repro.regex.ast import Alt, AnySymbol, Atom, Regex, alt, atom
from repro.regex.ops import regex_alphabet
from repro.regex.parser import parse_regex

RegexLike = Union[str, Regex]


def _coerce(expr: RegexLike) -> Regex:
    return parse_regex(expr) if isinstance(expr, str) else expr


@dataclass(frozen=True)
class FunctionSignature:
    """A function's input and output types (``tau_in``, ``tau_out``)."""

    input_type: Regex
    output_type: Regex

    def __str__(self) -> str:
        return "%s -> %s" % (self.input_type, self.output_type)


#: Pattern-signature matching modes.
EXACT = "exact"  # Definition's literal reading: signatures are equal
SUBSUME = "subsume"  # Section 2.1's wildcard reading: languages included


@dataclass(frozen=True)
class FunctionPattern:
    """A set of functions: a name predicate plus a required signature.

    A concrete function belongs to the pattern iff the predicate accepts
    its name *and* its signature matches the required one (Section 2.1).
    Two matching modes realize the paper's two readings:

    - ``"exact"`` (default): "its signature is the same as the required
      one" — structural equality of the type expressions;
    - ``"subsume"``: the wildcard combination — "the temperature is
      obtained from an arbitrary function that returns a correct temp
      element, but may take any argument" is the pattern
      ``any* -> temp``, which must admit ``city -> temp``; here the
      function's input and output languages must be *included* in the
      pattern's.

    The predicate models Web services like the paper's ``UDDIF`` (is the
    service registered in this UDDI directory?) and ``InACL`` (does the
    client have access rights?).
    """

    name: str
    signature: FunctionSignature
    predicate: Callable[[str], bool] = field(compare=False, default=lambda _n: True)
    match: str = EXACT

    def admits(self, function_name: str, signature: Optional[FunctionSignature]) -> bool:
        """True iff a function with this name/signature matches the pattern."""
        if not self.predicate(function_name):
            return False
        if signature is None:
            return False
        if self.match == EXACT:
            return signature == self.signature
        return self._subsumes(signature)

    def _subsumes(self, signature: FunctionSignature) -> bool:
        from repro.automata.ops import language_subset, regex_to_dfa
        from repro.automata.symbols import Alphabet, regex_symbols

        for theirs, ours in (
            (signature.input_type, self.signature.input_type),
            (signature.output_type, self.signature.output_type),
        ):
            alphabet = Alphabet.closure(
                regex_symbols(theirs), regex_symbols(ours)
            )
            if not language_subset(
                regex_to_dfa(theirs, alphabet), regex_to_dfa(ours, alphabet)
            ):
                return False
        return True


@dataclass(frozen=True)
class Schema:
    """An intensional document schema ``(L, F, P, tau)``.

    ``label_types`` is ``tau`` restricted to labels, ``functions`` holds
    the signatures, ``patterns`` the function-pattern definitions, and
    ``root`` the optional distinguished root label of Definition 6.
    """

    label_types: Dict[str, Regex]
    functions: Dict[str, FunctionSignature] = field(default_factory=dict)
    patterns: Dict[str, FunctionPattern] = field(default_factory=dict)
    root: Optional[str] = None

    # -- tau accessors ------------------------------------------------

    def type_of(self, label: str) -> Optional[Regex]:
        """``tau(label)`` or None when the label is not declared."""
        return self.label_types.get(label)

    def signature_of(self, name: str) -> Optional[FunctionSignature]:
        """The signature of a declared function or pattern, if any."""
        if name in self.functions:
            return self.functions[name]
        if name in self.patterns:
            return self.patterns[name].signature
        return None

    def input_type(self, name: str) -> Optional[Regex]:
        """``tau_in(name)`` for a function or pattern."""
        signature = self.signature_of(name)
        return signature.input_type if signature else None

    def output_type(self, name: str) -> Optional[Regex]:
        """``tau_out(name)`` for a function or pattern."""
        signature = self.signature_of(name)
        return signature.output_type if signature else None

    # -- derived vocabulary --------------------------------------------

    def labels(self) -> FrozenSet[str]:
        """The set ``L``."""
        return frozenset(self.label_types)

    def function_names(self) -> FrozenSet[str]:
        """The set ``F``."""
        return frozenset(self.functions)

    def pattern_names(self) -> FrozenSet[str]:
        """The set ``P``."""
        return frozenset(self.patterns)

    def alphabet_symbols(self) -> FrozenSet[str]:
        """Every symbol the schema mentions anywhere (labels, functions,
        patterns, atoms inside type expressions, plus ``#data``)."""
        symbols: Set[str] = {DATA}
        symbols.update(self.label_types)
        symbols.update(self.functions)
        symbols.update(self.patterns)
        for expr in self.label_types.values():
            symbols.update(regex_alphabet(expr))
        for signature in self.functions.values():
            symbols.update(regex_alphabet(signature.input_type))
            symbols.update(regex_alphabet(signature.output_type))
        for pattern in self.patterns.values():
            symbols.update(regex_alphabet(pattern.signature.input_type))
            symbols.update(regex_alphabet(pattern.signature.output_type))
        return frozenset(symbols)

    # -- pattern handling ----------------------------------------------

    def matching_patterns(
        self, function_name: str, signature: Optional[FunctionSignature]
    ) -> FrozenSet[str]:
        """Names of the patterns a concrete function belongs to."""
        return frozenset(
            pattern.name
            for pattern in self.patterns.values()
            if pattern.admits(function_name, signature)
        )

    def desugar_patterns(
        self,
        candidates: Iterable[str],
        signature_lookup: Callable[[str], Optional[FunctionSignature]],
    ) -> "Schema":
        """Replace pattern atoms by the concrete functions that match them.

        ``candidates`` is the closed set of function names that can ever
        appear during the rewriting at hand (names in the document plus
        every function declared by the sender schema ``s0``); since no
        other function can materialize, substituting each pattern atom by
        the alternation of its matching candidates is exact.  Patterns
        that match no candidate become the empty language.
        """
        expansion: Dict[str, Regex] = {}
        for pattern in self.patterns.values():
            matching = sorted(
                name
                for name in set(candidates)
                if pattern.admits(name, signature_lookup(name))
            )
            expansion[pattern.name] = alt(*(atom(name) for name in matching))

        new_labels = {
            label: _substitute(expr, expansion)
            for label, expr in self.label_types.items()
        }
        new_functions = dict(self.functions)
        # Matched candidate functions inherit the pattern's signature if
        # they were not already declared (they come from s0).
        for pattern in self.patterns.values():
            for name in set(candidates):
                if pattern.admits(name, signature_lookup(name)):
                    new_functions.setdefault(name, pattern.signature)
        return Schema(new_labels, new_functions, {}, self.root)

    def with_root(self, root: str) -> "Schema":
        """A copy with the distinguished root label set."""
        if root not in self.label_types:
            raise SchemaError("root label %r is not declared" % root)
        return replace(self, root=root)


def _substitute(expr: Regex, expansion: Dict[str, Regex]) -> Regex:
    """Replace pattern-name atoms inside ``expr`` by their expansions."""
    from repro.regex.ast import Empty, Epsilon, Repeat, Seq, Star, seq, star, Repeat as Rep

    if isinstance(expr, Atom):
        return expansion.get(expr.symbol, expr)
    if isinstance(expr, (Epsilon, Empty, AnySymbol)):
        return expr
    if isinstance(expr, Seq):
        return seq(*(_substitute(item, expansion) for item in expr.items))
    if isinstance(expr, Alt):
        return alt(*(_substitute(option, expansion) for option in expr.options))
    if isinstance(expr, Star):
        return star(_substitute(expr.item, expansion))
    if isinstance(expr, Repeat):
        from repro.regex.ast import repeat

        return repeat(_substitute(expr.item, expansion), expr.low, expr.high)
    raise TypeError("unknown regex node %r" % (expr,))


class SchemaBuilder:
    """Fluent construction of schemas with consistency checking.

    ``build(strict=True)`` verifies that every atom appearing in a type
    expression is a declared label, function, pattern or ``#data``;
    ``strict=False`` tolerates undeclared atoms (the paper's schema (*)
    mentions ``performance`` without declaring it).
    """

    def __init__(self):
        self._labels: Dict[str, Regex] = {}
        self._functions: Dict[str, FunctionSignature] = {}
        self._patterns: Dict[str, FunctionPattern] = {}
        self._root: Optional[str] = None

    def element(self, label: str, content: RegexLike) -> "SchemaBuilder":
        """Declare ``tau(label) = content``."""
        if label in self._labels:
            raise SchemaError("label %r declared twice" % label)
        self._labels[label] = _coerce(content)
        return self

    def function(
        self, name: str, input_type: RegexLike, output_type: RegexLike
    ) -> "SchemaBuilder":
        """Declare a function with ``tau_in`` / ``tau_out``."""
        if name in self._functions or name in self._patterns:
            raise SchemaError("function %r declared twice" % name)
        self._functions[name] = FunctionSignature(
            _coerce(input_type), _coerce(output_type)
        )
        return self

    def pattern(
        self,
        name: str,
        input_type: RegexLike,
        output_type: RegexLike,
        predicate: Callable[[str], bool] = lambda _n: True,
        match: str = EXACT,
    ) -> "SchemaBuilder":
        """Declare a function pattern (Section 2.1).

        ``match="subsume"`` admits any function whose signature languages
        are included in the pattern's — required when the pattern uses
        wildcards ("may take any argument").
        """
        if name in self._functions or name in self._patterns:
            raise SchemaError("pattern %r collides with another declaration" % name)
        if match not in (EXACT, SUBSUME):
            raise SchemaError("unknown pattern match mode %r" % match)
        signature = FunctionSignature(_coerce(input_type), _coerce(output_type))
        self._patterns[name] = FunctionPattern(name, signature, predicate, match)
        return self

    def root(self, label: str) -> "SchemaBuilder":
        """Set the distinguished root label (Definition 6)."""
        self._root = label
        return self

    def build(self, strict: bool = True) -> Schema:
        """Finalize; raises :class:`SchemaError` on inconsistencies."""
        if self._root is not None and self._root not in self._labels:
            raise SchemaError("root label %r is not declared" % self._root)
        schema = Schema(
            dict(self._labels), dict(self._functions), dict(self._patterns), self._root
        )
        if strict:
            declared = (
                schema.labels()
                | schema.function_names()
                | schema.pattern_names()
                | {DATA}
            )
            undeclared: Set[str] = set()
            for expr in list(self._labels.values()) + [
                t
                for sig in self._functions.values()
                for t in (sig.input_type, sig.output_type)
            ] + [
                t
                for pat in self._patterns.values()
                for t in (pat.signature.input_type, pat.signature.output_type)
            ]:
                undeclared |= set(regex_alphabet(expr)) - declared
            if undeclared:
                raise SchemaError(
                    "type expressions mention undeclared symbols: %s"
                    % ", ".join(sorted(undeclared))
                )
        return schema
