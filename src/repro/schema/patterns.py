"""Invocation policies and reusable pattern predicates.

Section 2.1 ("Restricted service invocations"): the functions and
patterns of a schema are partitioned into *invocable* and *non-invocable*
groups, and a **legal** rewriting only invokes invocable ones.  The
rewriting algorithms take an :class:`InvocationPolicy` and simply refrain
from adding fork options for non-invocable function edges.

The module also ships the predicate combinators used by function
patterns: registry membership (the paper's ``UDDIF``), access-control
checks (``InACL``) and plain name filters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, FrozenSet, Iterable, Optional


@dataclass(frozen=True)
class InvocationPolicy:
    """Decides which functions a legal rewriting may invoke.

    The policy is a whitelist/blacklist pair plus an optional predicate;
    a function is invocable iff it passes all three filters.  The default
    policy allows everything, matching the basic model of Section 2.
    """

    allowed: Optional[FrozenSet[str]] = None
    denied: FrozenSet[str] = frozenset()
    predicate: Callable[[str], bool] = field(compare=False, default=lambda _n: True)

    def is_invocable(self, function_name: str) -> bool:
        """True iff a legal rewriting may invoke ``function_name``."""
        if function_name in self.denied:
            return False
        if self.allowed is not None and function_name not in self.allowed:
            return False
        return bool(self.predicate(function_name))

    def deny_also(self, names: Iterable[str]) -> "InvocationPolicy":
        """A copy with more names denied."""
        return InvocationPolicy(
            self.allowed, self.denied | frozenset(names), self.predicate
        )


def allow_all() -> InvocationPolicy:
    """Every function is invocable (the default)."""
    return InvocationPolicy()


def allow_only(names: Iterable[str]) -> InvocationPolicy:
    """Only the listed functions are invocable."""
    return InvocationPolicy(allowed=frozenset(names))


def deny(names: Iterable[str]) -> InvocationPolicy:
    """All functions except the listed ones are invocable."""
    return InvocationPolicy(denied=frozenset(names))


def name_in_registry(registry_names: Iterable[str]) -> Callable[[str], bool]:
    """A ``UDDIF``-style predicate: is the function registered?

    In the paper this predicate is itself a Web service; here it closes
    over a snapshot of the registry's names (the live version is provided
    by :meth:`repro.services.registry.ServiceRegistry.uddif_predicate`).
    """
    snapshot = frozenset(registry_names)

    def predicate(function_name: str) -> bool:
        return function_name in snapshot

    return predicate


def conjunction(*predicates: Callable[[str], bool]) -> Callable[[str], bool]:
    """Conjunction of name predicates — the paper's ``UDDIF ∧ InACL``."""

    def predicate(function_name: str) -> bool:
        return all(p(function_name) for p in predicates)

    return predicate
