"""The Section 6 compatibility check, via representative documents.

For every label ``l`` of the sender schema reachable from the root, we
synthesize a fresh *virtual function* ``g_l`` whose output type is the
sender's content model ``tau0(l)``, and test whether the one-letter word
``g_l`` safely rewrites into the receiver's content model ``tau(l)`` at
depth ``k + 1`` (one level is consumed by the virtual call itself).  The
adversary expanding ``g_l`` enumerates exactly the children words an
``l``-element may have, with the remaining ``k`` levels available to
rewrite them — so the per-label tests together decide Definition 6.

The check is conservative on two counts, both documented in DESIGN.md:
labels are collected by reachability through *all* type positions
(including parameters of calls that a rewriting might remove), and
functions shared by both schemas are required to agree on signatures
(the standing assumption of Section 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.automata import core as automata_core
from repro.automata.ops import language_equal, language_subset
from repro.automata.symbols import DATA, OTHER, Alphabet, regex_symbols
from repro.compile import context as compile_context
from repro.errors import SchemaError
from repro.regex.ast import Regex
from repro.regex.ops import regex_alphabet
from repro.rewriting.lazy import analyze_safe_lazy
from repro.rewriting.safe import analyze_safe
from repro.schema.model import Schema
from repro.schema.patterns import InvocationPolicy, allow_all

#: Name given to the virtual function representing a label's instances.
VIRTUAL = "__virtual__"


def _shield_wildcards(expr: Regex) -> Regex:
    """Exclude the virtual function from every wildcard in a target type.

    Keeping the virtual call must never be a winning option — it is a
    stand-in for the label's children word, not a real node — so ``any``
    atoms in the receiver's types are not allowed to match it.
    """
    from repro.regex.ast import (
        Alt, AnySymbol, Atom, Empty, Epsilon, Repeat, Seq, Star,
        alt, repeat, seq, star,
    )

    if isinstance(expr, AnySymbol):
        return AnySymbol(expr.exclude | {VIRTUAL})
    if isinstance(expr, (Atom, Epsilon, Empty)):
        return expr
    if isinstance(expr, Seq):
        return seq(*(_shield_wildcards(item) for item in expr.items))
    if isinstance(expr, Alt):
        return alt(*(_shield_wildcards(option) for option in expr.options))
    if isinstance(expr, Star):
        return star(_shield_wildcards(expr.item))
    if isinstance(expr, Repeat):
        return repeat(_shield_wildcards(expr.item), expr.low, expr.high)
    raise TypeError("unknown regex node %r" % (expr,))


def _extensional(expr: Regex, output_types: Dict[str, Regex]) -> bool:
    """No wildcards, no symbol with a known signature: rewriting is inert.

    Instances of such a type contain no call an expansion could touch, so
    "every children word safely rewrites into the target" collapses to
    plain language inclusion — decidable on minimized DFAs without
    playing the game.  Wildcards disqualify because an instance may put
    an invocable call where the wildcard stands.
    """
    from repro.regex.ast import (
        Alt, AnySymbol, Atom, Empty, Epsilon, Repeat, Seq, Star,
    )

    if isinstance(expr, AnySymbol):
        return False
    if isinstance(expr, Atom):
        return expr.symbol not in output_types
    if isinstance(expr, (Epsilon, Empty)):
        return True
    if isinstance(expr, Seq):
        return all(_extensional(item, output_types) for item in expr.items)
    if isinstance(expr, Alt):
        return all(_extensional(option, output_types) for option in expr.options)
    if isinstance(expr, (Star, Repeat)):
        return _extensional(expr.item, output_types)
    return False


def _signatures_equivalent(sender_sig, receiver_sig, cc) -> bool:
    """Language-level signature agreement (Section 4's assumption).

    Structural equality is too strict: ``a | b`` and ``b | a`` declare
    the same service.  Compare input and output types as languages, on
    minimized DFAs from the compilation cache.
    """
    for ours, theirs in (
        (sender_sig.input_type, receiver_sig.input_type),
        (sender_sig.output_type, receiver_sig.output_type),
    ):
        alphabet = Alphabet.closure(regex_symbols(ours), regex_symbols(theirs))
        if not language_equal(
            cc.target_dfa(ours, alphabet),
            cc.target_dfa(theirs, alphabet),
            minimized=True,
        ):
            return False
    return True


@dataclass(frozen=True)
class LabelCheck:
    """Outcome of the per-label safe-rewriting test."""

    label: str
    safe: bool
    reason: str = ""

    def __str__(self) -> str:
        status = "safe" if self.safe else "NOT safe"
        suffix = " (%s)" % self.reason if self.reason else ""
        return "%s: %s%s" % (self.label, status, suffix)


@dataclass
class SchemaCompatReport:
    """The outcome of :func:`schema_safely_rewrites`."""

    compatible: bool
    checks: List[LabelCheck] = field(default_factory=list)
    signature_conflicts: List[str] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.compatible

    def failed(self) -> List[LabelCheck]:
        """The labels whose instances may fail to rewrite."""
        return [check for check in self.checks if not check.safe]

    def __str__(self) -> str:
        lines = ["compatible" if self.compatible else "NOT compatible"]
        lines.extend("  " + str(check) for check in self.checks)
        lines.extend("  signature conflict: " + c for c in self.signature_conflicts)
        return "\n".join(lines)


def reachable_labels(schema: Schema, root: str) -> Tuple[Set[str], Set[str]]:
    """Labels and functions reachable from the root label.

    Reachability follows element content models, function input *and*
    output types, and pattern signatures — an over-approximation of what
    can occur in an instance.
    """
    labels: Set[str] = set()
    functions: Set[str] = set()
    queue = [root]
    seen: Set[str] = set()
    while queue:
        symbol = queue.pop()
        if symbol in seen or symbol in (DATA, OTHER):
            continue
        seen.add(symbol)
        expressions: List[Regex] = []
        if symbol in schema.label_types:
            labels.add(symbol)
            expressions.append(schema.label_types[symbol])
        elif schema.signature_of(symbol) is not None:
            functions.add(symbol)
            signature = schema.signature_of(symbol)
            expressions.extend([signature.input_type, signature.output_type])
        for expr in expressions:
            queue.extend(regex_alphabet(expr))
    return labels, functions


def schema_safely_rewrites(
    sender: Schema,
    receiver: Schema,
    root: Optional[str] = None,
    k: int = 1,
    policy: Optional[InvocationPolicy] = None,
    lazy: bool = True,
    compile_cache=None,
) -> SchemaCompatReport:
    """Does every instance of ``sender`` safely rewrite into ``receiver``?

    Implements Definition 6 via the virtual-function reduction.  The
    paper's worked claim — schema (*) safely rewrites into (**) but not
    into (***) — is benchmark E12.

    Args:
        sender: the sender's schema ``s0``.
        receiver: the agreed exchange schema ``s``.
        root: the distinguished root label (defaults to ``sender.root``).
        k: the depth bound for rewriting each label's children word.
        policy: the invocable/non-invocable partition.
        lazy: use the lazy game solver.
        compile_cache: the shared automata compilation cache (``None`` =
            the ambient one) — repeated checks against one receiver
            reuse its compiled minimized DFAs and complements.
    """
    root = root or sender.root
    if root is None:
        raise SchemaError("no root label given and the sender declares none")
    if root not in sender.label_types:
        raise SchemaError("root label %r is not declared by the sender" % root)
    policy = policy or allow_all()
    analyze = analyze_safe_lazy if lazy else analyze_safe
    cc = compile_cache if compile_cache is not None else compile_context.cache()

    report = SchemaCompatReport(compatible=True)

    labels, functions = reachable_labels(sender, root)

    # Standing assumption of Section 4: shared functions must agree —
    # checked up to language equivalence, not syntax.
    for name in sorted(functions):
        sender_sig = sender.signature_of(name)
        receiver_sig = receiver.signature_of(name)
        if (
            receiver_sig is not None
            and sender_sig != receiver_sig
            and not _signatures_equivalent(sender_sig, receiver_sig, cc)
        ):
            report.signature_conflicts.append(
                "%s: sender %s vs receiver %s" % (name, sender_sig, receiver_sig)
            )
            report.compatible = False

    # Output types available during any rewriting: all known signatures.
    output_types: Dict[str, Regex] = {}
    for source in (sender, receiver):
        for name in source.function_names():
            output_types.setdefault(name, source.signature_of(name).output_type)

    def invocable(name: str) -> bool:
        if name == VIRTUAL:
            return True
        return policy.is_invocable(name)

    for label in sorted(labels):
        target = receiver.type_of(label)
        if target is None:
            report.checks.append(
                LabelCheck(
                    label,
                    False,
                    "label not declared by the receiver (instances containing "
                    "it cannot validate)",
                )
            )
            report.compatible = False
            continue
        if receiver.patterns:
            candidates = sorted(set(output_types) | set(functions))
            helper = Schema({"__t__": target}, {}, dict(receiver.patterns))

            def _sig(name: str):
                sig = sender.signature_of(name)
                return sig if sig is not None else receiver.signature_of(name)

            target = helper.desugar_patterns(candidates, _sig).label_types["__t__"]
        problem_outputs = dict(output_types)
        sender_type = sender.label_types[label]
        problem_outputs[VIRTUAL] = sender_type
        shielded = _shield_wildcards(target)
        if _extensional(sender_type, problem_outputs):
            # Rewriting cannot touch instances of this label, so the
            # game degenerates to inclusion of the content models —
            # decided on Hopcroft-minimized DFAs from the compile cache.
            # On the bitset core the receiver side stays a Glushkov NFA:
            # the antichain search decides inclusion with no subset
            # construction and no complement at all.
            alphabet = Alphabet.closure(
                regex_symbols(sender_type), regex_symbols(shielded)
            )
            if automata_core.use_bitset():
                safe = cc.antichain_subset(sender_type, shielded, alphabet)
            else:
                safe = language_subset(
                    cc.target_dfa(sender_type, alphabet),
                    cc.target_dfa(shielded, alphabet),
                    minimized=True,
                )
        else:
            analysis = analyze(
                (VIRTUAL,),
                problem_outputs,
                shielded,
                k=k + 1,
                invocable=invocable,
                compile_cache=cc,
            )
            safe = analysis.exists
        reason = "" if safe else (
            "some children word of %r cannot be safely rewritten into %s"
            % (label, receiver.type_of(label))
        )
        report.checks.append(LabelCheck(label, safe, reason))
        report.compatible = report.compatible and safe

    return report
