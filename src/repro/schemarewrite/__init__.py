"""Schema-to-schema safe rewriting (Section 6).

To check compatibility between applications, the sender verifies that
*all* the documents its schema ``s0`` can generate safely rewrite into
the exchange schema ``s`` — without enumerating the (infinite) set of
instances.  The reduction: "testing whether all the elements of a given
type have a safe rewriting is analogous to testing whether a single
function element, with an output of that type, can be safely rewritten".
"""

from repro.schemarewrite.compat import (
    LabelCheck,
    SchemaCompatReport,
    schema_safely_rewrites,
)

__all__ = ["schema_safely_rewrites", "SchemaCompatReport", "LabelCheck"]
